//! Dependency-free fork-join parallelism over [`std::thread::scope`].
//!
//! Every parallel stage in the workspace — batch-sharded training, query
//! fan-out in evaluation, entity-sharded scoring — goes through a [`Pool`],
//! a value describing how many worker threads a fork-join region may use.
//! Since PR 9 the surfaces no longer hold pools directly: the batch
//! executor (`halk_core::exec`, DESIGN.md §15) owns the labeled pool and
//! hands it to each backend's reduce hook, so this crate stays the single
//! layer that ever spawns a thread.
//! There are no persistent worker threads and no work-stealing deques:
//! scoped threads are spawned per region (a few microseconds, amortized by
//! region bodies that run for milliseconds), which keeps the runtime free of
//! `unsafe`, global state and external crates.
//!
//! Determinism contract: every combinator returns results in **input
//! order**, regardless of the thread count or the dynamic schedule, and
//! `Pool::new(1)` executes the exact sequential loop (no scope, no spawn,
//! no atomics). Callers that reduce the returned values in a fixed order
//! therefore produce bit-identical floats at any thread count — the
//! property the training and evaluation determinism suites pin down (see
//! DESIGN.md §9).
//!
//! Sizing: [`Pool::auto`] resolves, in order, a programmatic override
//! ([`set_threads`], used by `--threads`), the `HALK_THREADS` environment
//! variable, and [`std::thread::available_parallelism`].
//!
//! Observability: this crate stays dependency-free, so instead of linking
//! an observability crate it exposes two `fn`-pointer hooks. A stats hook
//! ([`set_stats_hook`]) receives a [`PoolStats`] — region label, thread
//! count, wall time and per-worker busy time — after every fork-join
//! region, and a worker-exit hook ([`set_worker_exit_hook`]) runs as the
//! last statement of every worker closure (`halk-core` points it at the
//! trace-buffer flush, since scope exit does not wait for thread-local
//! destructors). When no hook is installed the overhead per region is one
//! relaxed atomic load.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, OnceLock};
use std::time::Instant;

/// Programmatic thread-count override (0 = unset). Set once by binaries
/// from `--threads`; takes precedence over `HALK_THREADS`.
static OVERRIDE: AtomicUsize = AtomicUsize::new(0);

/// Overrides the automatic pool size for every subsequent [`Pool::auto`]
/// (0 clears the override). Binaries call this from their `--threads` flag.
pub fn set_threads(n: usize) {
    OVERRIDE.store(n, Ordering::SeqCst);
}

/// Parses a `HALK_THREADS`-style value: a positive integer, else `None`.
fn parse_threads(s: &str) -> Option<usize> {
    s.trim().parse::<usize>().ok().filter(|&n| n > 0)
}

fn env_threads() -> Option<usize> {
    static ENV: OnceLock<Option<usize>> = OnceLock::new();
    *ENV.get_or_init(|| {
        std::env::var("HALK_THREADS")
            .ok()
            .and_then(|s| parse_threads(&s))
    })
}

/// The thread count [`Pool::auto`] resolves to right now: the
/// [`set_threads`] override, else `HALK_THREADS`, else the machine's
/// available parallelism (1 if that cannot be determined).
pub fn auto_threads() -> usize {
    let o = OVERRIDE.load(Ordering::SeqCst);
    if o > 0 {
        return o;
    }
    if let Some(n) = env_threads() {
        return n;
    }
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

/// Per-region statistics handed to the stats hook after each fork-join
/// region (including sequential fast paths, which report one "worker").
#[derive(Debug, Clone)]
pub struct PoolStats {
    /// The pool's label (see [`Pool::labeled`]); `"pool"` by default.
    pub region: &'static str,
    /// Number of workers the region actually used (≤ the pool size).
    pub workers: usize,
    /// Wall-clock time of the whole region, nanoseconds.
    pub wall_ns: u64,
    /// Busy time of each worker (closure run time), nanoseconds.
    pub busy_ns: Vec<u64>,
}

/// Set when either hook is installed: the only cost un-instrumented
/// regions pay is one relaxed load of this flag.
static HOOKS_ENABLED: AtomicBool = AtomicBool::new(false);
static STATS_HOOK: Mutex<Option<fn(&PoolStats)>> = Mutex::new(None);
static WORKER_EXIT_HOOK: Mutex<Option<fn()>> = Mutex::new(None);

fn refresh_hooks_enabled() {
    let on = STATS_HOOK.lock().is_ok_and(|h| h.is_some())
        || WORKER_EXIT_HOOK.lock().is_ok_and(|h| h.is_some());
    HOOKS_ENABLED.store(on, Ordering::SeqCst);
}

/// Installs (or clears, with `None`) the per-region stats hook.
pub fn set_stats_hook(hook: Option<fn(&PoolStats)>) {
    if let Ok(mut h) = STATS_HOOK.lock() {
        *h = hook;
    }
    refresh_hooks_enabled();
}

/// Installs (or clears, with `None`) the worker-exit hook, called as the
/// last statement of every pool worker closure.
pub fn set_worker_exit_hook(hook: Option<fn()>) {
    if let Ok(mut h) = WORKER_EXIT_HOOK.lock() {
        *h = hook;
    }
    refresh_hooks_enabled();
}

#[inline]
fn hooks_enabled() -> bool {
    HOOKS_ENABLED.load(Ordering::Relaxed)
}

/// Runs the worker-exit hook if installed. Workers call this (via
/// [`hooks_enabled`] gating) right before their closure returns.
fn run_worker_exit() {
    let hook = WORKER_EXIT_HOOK.lock().ok().and_then(|h| *h);
    if let Some(f) = hook {
        f();
    }
}

fn report_stats(stats: &PoolStats) {
    let hook = STATS_HOOK.lock().ok().and_then(|h| *h);
    if let Some(f) = hook {
        f(stats);
    }
}

/// Region-scope instrumentation state: a wall timer plus one busy-time
/// slot per worker, allocated only when a hook is installed.
struct RegionObs {
    region: &'static str,
    start: Instant,
    busy: Vec<AtomicU64>,
}

impl RegionObs {
    /// `Some` when hooks are installed (`None` costs one atomic load).
    fn begin(region: &'static str, workers: usize) -> Option<RegionObs> {
        if !hooks_enabled() {
            return None;
        }
        Some(RegionObs {
            region,
            start: Instant::now(),
            busy: (0..workers).map(|_| AtomicU64::new(0)).collect(),
        })
    }

    /// Records worker `w`'s busy time and runs the worker-exit hook.
    /// Callers pass `Some(started)` captured at closure entry.
    fn worker_done(&self, w: usize, started: Instant) {
        let ns = started.elapsed().as_nanos() as u64;
        if let Some(slot) = self.busy.get(w) {
            slot.fetch_add(ns, Ordering::Relaxed);
        }
        run_worker_exit();
    }

    /// Reports the finished region to the stats hook.
    fn finish(self, workers: usize) {
        let stats = PoolStats {
            region: self.region,
            workers,
            wall_ns: self.start.elapsed().as_nanos() as u64,
            busy_ns: self
                .busy
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
        };
        report_stats(&stats);
    }
}

/// A fork-join region's thread budget. Cheap to copy; holds no OS
/// resources (threads are scoped to each combinator call).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Pool {
    threads: usize,
    label: &'static str,
}

impl Pool {
    /// A pool of exactly `threads` workers (clamped to at least 1).
    pub fn new(threads: usize) -> Self {
        Self {
            threads: threads.max(1),
            label: "pool",
        }
    }

    /// A pool sized by [`auto_threads`].
    pub fn auto() -> Self {
        Self::new(auto_threads())
    }

    /// The same pool with a region label for the stats hook (shows up as
    /// `PoolStats::region` and in per-region pool metrics).
    pub fn labeled(self, label: &'static str) -> Self {
        Self { label, ..self }
    }

    /// The region label (`"pool"` unless set via [`Pool::labeled`]).
    pub fn label(&self) -> &'static str {
        self.label
    }

    /// The configured thread count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// True when this pool runs everything inline on the caller's thread.
    pub fn is_sequential(&self) -> bool {
        self.threads == 1
    }

    /// Maps `f` over `items`, returning results in input order. Items are
    /// split into one contiguous chunk per worker (static schedule — right
    /// for uniform-cost items). With one thread (or one item) this is a
    /// plain sequential `map` on the calling thread.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let workers = self.threads.min(items.len());
        let obs = RegionObs::begin(self.label, workers.max(1));
        if workers <= 1 {
            let out: Vec<R> = items.iter().map(f).collect();
            if let Some(o) = obs {
                o.worker_done(0, o.start);
                o.finish(1);
            }
            return out;
        }
        let mut per_chunk: Vec<Vec<R>> = Vec::with_capacity(workers);
        let chunk = items.len().div_ceil(workers);
        std::thread::scope(|s| {
            let handles: Vec<_> = items
                .chunks(chunk)
                .enumerate()
                .map(|(w, c)| {
                    let (f, obs) = (&f, &obs);
                    s.spawn(move || {
                        let started = Instant::now();
                        let out = c.iter().map(f).collect::<Vec<R>>();
                        if let Some(o) = obs {
                            o.worker_done(w, started);
                        }
                        out
                    })
                })
                .collect();
            per_chunk.extend(
                handles
                    .into_iter()
                    .map(|h| h.join().expect("par_map worker panicked")),
            );
        });
        if let Some(o) = obs {
            o.finish(workers);
        }
        per_chunk.into_iter().flatten().collect()
    }

    /// Shard-affine fan-out: runs `f(s)` once for every shard index
    /// `0..n_shards`, with a *stable* contiguous shard→worker assignment
    /// (worker `w` owns shards `w * per .. (w + 1) * per`). Unlike
    /// [`Pool::par_map_dyn`] there is no work stealing — a shard always
    /// lands on the same worker for a given `(n_shards, threads)` pair, so
    /// shard-local state (trig tables, heaps) stays cache- and, later,
    /// NUMA-resident. Results come back indexed by shard. One thread (or
    /// one shard) runs exactly sequentially.
    pub fn par_shards<R, F>(&self, n_shards: usize, f: F) -> Vec<R>
    where
        R: Send,
        F: Fn(usize) -> R + Sync,
    {
        let workers = self.threads.min(n_shards);
        let obs = RegionObs::begin(self.label, workers.max(1));
        if workers <= 1 {
            let out: Vec<R> = (0..n_shards).map(f).collect();
            if let Some(o) = obs {
                o.worker_done(0, o.start);
                o.finish(1);
            }
            return out;
        }
        let per = n_shards.div_ceil(workers);
        let mut per_worker: Vec<Vec<R>> = Vec::with_capacity(workers);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let (f, obs) = (&f, &obs);
                    s.spawn(move || {
                        let started = Instant::now();
                        let lo = w * per;
                        let hi = (lo + per).min(n_shards);
                        let out = (lo..hi).map(f).collect::<Vec<R>>();
                        if let Some(o) = obs {
                            o.worker_done(w, started);
                        }
                        out
                    })
                })
                .collect();
            per_worker.extend(
                handles
                    .into_iter()
                    .map(|h| h.join().expect("par_shards worker panicked")),
            );
        });
        if let Some(o) = obs {
            o.finish(workers);
        }
        per_worker.into_iter().flatten().collect()
    }

    /// Like [`Pool::par_map`] but with a dynamic splitter: workers claim
    /// items one at a time off a shared atomic counter, so uneven per-item
    /// costs balance automatically. Results still come back in input order.
    pub fn par_map_dyn<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        let workers = self.threads.min(items.len());
        let obs = RegionObs::begin(self.label, workers.max(1));
        if workers <= 1 {
            let out: Vec<R> = items.iter().map(f).collect();
            if let Some(o) = obs {
                o.worker_done(0, o.start);
                o.finish(1);
            }
            return out;
        }
        let next = AtomicUsize::new(0);
        let mut per_worker: Vec<Vec<(usize, R)>> = Vec::with_capacity(workers);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|w| {
                    let (f, next, obs) = (&f, &next, &obs);
                    s.spawn(move || {
                        let started = Instant::now();
                        let mut claimed = Vec::new();
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            let Some(item) = items.get(i) else { break };
                            claimed.push((i, f(item)));
                        }
                        if let Some(o) = obs {
                            o.worker_done(w, started);
                        }
                        claimed
                    })
                })
                .collect();
            per_worker.extend(
                handles
                    .into_iter()
                    .map(|h| h.join().expect("par_map_dyn worker panicked")),
            );
        });
        if let Some(o) = obs {
            o.finish(workers);
        }
        // Scatter the claimed (index, result) pairs back into input order.
        let mut slots: Vec<Option<R>> = std::iter::repeat_with(|| None).take(items.len()).collect();
        for (i, r) in per_worker.into_iter().flatten() {
            slots[i] = Some(r);
        }
        slots
            .into_iter()
            .map(|r| r.expect("every index claimed exactly once"))
            .collect()
    }

    /// Maps `f(index, &mut item)` over `items` in parallel, returning the
    /// results in input order. Each worker owns one contiguous chunk, so
    /// mutable access needs no synchronization. This is the training
    /// shard driver: each shard slot holds a worker-private tape and
    /// gradient buffer.
    pub fn par_map_mut<T, R, F>(&self, items: &mut [T], f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(usize, &mut T) -> R + Sync,
    {
        let len = items.len();
        let workers = self.threads.min(len);
        let obs = RegionObs::begin(self.label, workers.max(1));
        if workers <= 1 {
            let out: Vec<R> = items
                .iter_mut()
                .enumerate()
                .map(|(i, item)| f(i, item))
                .collect();
            if let Some(o) = obs {
                o.worker_done(0, o.start);
                o.finish(1);
            }
            return out;
        }
        let chunk = len.div_ceil(workers);
        let mut per_chunk: Vec<Vec<R>> = Vec::with_capacity(workers);
        std::thread::scope(|s| {
            let handles: Vec<_> = items
                .chunks_mut(chunk)
                .enumerate()
                .map(|(ci, c)| {
                    let (f, obs) = (&f, &obs);
                    s.spawn(move || {
                        let started = Instant::now();
                        let out = c
                            .iter_mut()
                            .enumerate()
                            .map(|(j, item)| f(ci * chunk + j, item))
                            .collect::<Vec<R>>();
                        if let Some(o) = obs {
                            o.worker_done(ci, started);
                        }
                        out
                    })
                })
                .collect();
            per_chunk.extend(
                handles
                    .into_iter()
                    .map(|h| h.join().expect("par_map_mut worker panicked")),
            );
        });
        if let Some(o) = obs {
            o.finish(workers);
        }
        per_chunk.into_iter().flatten().collect()
    }

    /// Runs `f(chunk_index, chunk)` over fixed-size mutable chunks of
    /// `data` in parallel (the last chunk may be short). Chunk boundaries
    /// depend only on `chunk_size`, never on the thread count, so writes
    /// land identically at any parallelism — the entity-sharded scoring
    /// path relies on this.
    pub fn par_chunks_mut<T, F>(&self, data: &mut [T], chunk_size: usize, f: F)
    where
        T: Send,
        F: Fn(usize, &mut [T]) + Sync,
    {
        assert!(chunk_size > 0, "chunk_size must be positive");
        let n_chunks = data.len().div_ceil(chunk_size);
        let workers = self.threads.min(n_chunks);
        let obs = RegionObs::begin(self.label, workers.max(1));
        if workers <= 1 {
            for (i, c) in data.chunks_mut(chunk_size).enumerate() {
                f(i, c);
            }
            if let Some(o) = obs {
                o.worker_done(0, o.start);
                o.finish(1);
            }
            return;
        }
        let mut chunks: Vec<(usize, &mut [T])> = data.chunks_mut(chunk_size).enumerate().collect();
        let per_worker = chunks.len().div_ceil(workers);
        std::thread::scope(|s| {
            let mut w = 0usize;
            while !chunks.is_empty() {
                let group: Vec<(usize, &mut [T])> =
                    chunks.drain(..per_worker.min(chunks.len())).collect();
                let (f, obs) = (&f, &obs);
                s.spawn(move || {
                    let started = Instant::now();
                    for (i, c) in group {
                        f(i, c);
                    }
                    if let Some(o) = obs {
                        o.worker_done(w, started);
                    }
                });
                w += 1;
            }
        });
        if let Some(o) = obs {
            o.finish(workers);
        }
    }
}

impl Default for Pool {
    fn default() -> Self {
        Self::auto()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    const THREADS: [usize; 4] = [1, 2, 4, 8];

    #[test]
    fn pool_clamps_to_one() {
        assert_eq!(Pool::new(0).threads(), 1);
        assert!(Pool::new(1).is_sequential());
        assert!(!Pool::new(2).is_sequential());
    }

    #[test]
    fn par_map_matches_sequential_at_any_thread_count() {
        let items: Vec<i64> = (0..97).collect();
        let expect: Vec<i64> = items.iter().map(|x| x * x - 3).collect();
        for t in THREADS {
            let got = Pool::new(t).par_map(&items, |x| x * x - 3);
            assert_eq!(got, expect, "threads={t}");
        }
    }

    #[test]
    fn par_map_dyn_preserves_input_order_under_uneven_cost() {
        // Spin long enough on a cost that varies wildly by index so the
        // dynamic schedule actually interleaves claims across workers.
        let items: Vec<u64> = (0..64).collect();
        let expect: Vec<u64> = items.iter().map(|&x| x * 7).collect();
        for t in THREADS {
            let got = Pool::new(t).par_map_dyn(&items, |&x| {
                let spins = (x % 13) * 500;
                let mut acc = 0u64;
                for i in 0..spins {
                    acc = acc.wrapping_add(std::hint::black_box(i));
                }
                let _ = acc;
                x * 7
            });
            assert_eq!(got, expect, "threads={t}");
        }
    }

    #[test]
    fn par_map_mut_mutates_every_item_with_its_own_index() {
        for t in THREADS {
            let mut items = vec![0usize; 53];
            let returned = Pool::new(t).par_map_mut(&mut items, |i, slot| {
                *slot = i + 1;
                i * 2
            });
            assert_eq!(items, (1..=53).collect::<Vec<_>>(), "threads={t}");
            assert_eq!(
                returned,
                (0..53).map(|i| i * 2).collect::<Vec<_>>(),
                "threads={t}"
            );
        }
    }

    #[test]
    fn par_chunks_mut_covers_all_chunks_with_stable_boundaries() {
        for t in THREADS {
            let mut data = vec![0usize; 41];
            Pool::new(t).par_chunks_mut(&mut data, 8, |ci, chunk| {
                for (j, x) in chunk.iter_mut().enumerate() {
                    *x = ci * 8 + j;
                }
            });
            // Every slot holds its own global index: chunk boundaries are a
            // function of chunk_size alone.
            assert_eq!(data, (0..41).collect::<Vec<_>>(), "threads={t}");
        }
    }

    #[test]
    fn empty_and_singleton_inputs() {
        let empty: Vec<u32> = vec![];
        assert!(Pool::new(4).par_map(&empty, |x| *x).is_empty());
        assert!(Pool::new(4).par_map_dyn(&empty, |x| *x).is_empty());
        assert_eq!(Pool::new(4).par_map(&[9u32], |x| x + 1), vec![10]);
        let mut one = [5u32];
        Pool::new(4).par_chunks_mut(&mut one, 3, |_, c| c[0] += 1);
        assert_eq!(one, [6]);
    }

    #[test]
    fn parse_threads_accepts_positive_integers_only() {
        assert_eq!(parse_threads("4"), Some(4));
        assert_eq!(parse_threads(" 16 "), Some(16));
        assert_eq!(parse_threads("0"), None);
        assert_eq!(parse_threads("-2"), None);
        assert_eq!(parse_threads("four"), None);
        assert_eq!(parse_threads(""), None);
    }

    #[test]
    fn stats_hook_reports_labeled_region() {
        // Hooks are process-global and other tests run pools concurrently,
        // so the hook filters on a label unique to this test.
        static CALLS: AtomicUsize = AtomicUsize::new(0);
        static WORKERS: AtomicUsize = AtomicUsize::new(0);
        static SHAPE_OK: AtomicUsize = AtomicUsize::new(0);
        fn hook(s: &PoolStats) {
            if s.region != "par_hook_test" {
                return;
            }
            CALLS.fetch_add(1, Ordering::SeqCst);
            WORKERS.store(s.workers, Ordering::SeqCst);
            if s.busy_ns.len() == s.workers && s.wall_ns > 0 {
                SHAPE_OK.fetch_add(1, Ordering::SeqCst);
            }
        }
        set_stats_hook(Some(hook));
        let pool = Pool::new(3).labeled("par_hook_test");
        assert_eq!(pool.label(), "par_hook_test");
        let out = pool.par_map_dyn(&[1u64, 2, 3, 4, 5, 6], |x| x * 2);
        set_stats_hook(None);
        assert_eq!(out, vec![2, 4, 6, 8, 10, 12]);
        assert_eq!(CALLS.load(Ordering::SeqCst), 1);
        assert_eq!(WORKERS.load(Ordering::SeqCst), 3);
        assert_eq!(SHAPE_OK.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn stats_hook_covers_sequential_fast_path() {
        static SEQ_WORKERS: AtomicUsize = AtomicUsize::new(usize::MAX);
        fn hook(s: &PoolStats) {
            if s.region == "par_hook_seq_test" {
                SEQ_WORKERS.store(s.workers, Ordering::SeqCst);
            }
        }
        set_stats_hook(Some(hook));
        let got = Pool::new(1)
            .labeled("par_hook_seq_test")
            .par_map(&[7u32, 8], |x| x + 1);
        set_stats_hook(None);
        assert_eq!(got, vec![8, 9]);
        assert_eq!(SEQ_WORKERS.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn worker_exit_hook_runs_for_each_worker() {
        static EXITS: AtomicUsize = AtomicUsize::new(0);
        fn on_exit() {
            EXITS.fetch_add(1, Ordering::SeqCst);
        }
        set_worker_exit_hook(Some(on_exit));
        let before = EXITS.load(Ordering::SeqCst);
        let items: Vec<u32> = (0..16).collect();
        Pool::new(4).par_map(&items, |x| *x);
        set_worker_exit_hook(None);
        // Other tests' pool regions may add to the count concurrently;
        // at least this region's four workers must have reported.
        assert!(EXITS.load(Ordering::SeqCst) - before >= 4);
    }

    #[test]
    fn par_shards_returns_shard_order_and_stable_assignment() {
        for threads in [1, 2, 4, 8] {
            let got = Pool::new(threads).par_shards(7, |s| s * 10);
            assert_eq!(got, vec![0, 10, 20, 30, 40, 50, 60], "threads={threads}");
        }
        // Zero shards is fine.
        assert_eq!(Pool::new(4).par_shards(0, |s| s), Vec::<usize>::new());
        // Contiguous affinity: with 2 workers over 4 shards, shards 0–1
        // run on worker 0's thread and 2–3 on worker 1's.
        let ids = Pool::new(2).par_shards(4, |_| std::thread::current().id());
        assert_eq!(ids[0], ids[1]);
        assert_eq!(ids[2], ids[3]);
        assert_ne!(ids[0], ids[2]);
    }

    #[test]
    fn auto_threads_respects_programmatic_override() {
        // The override outranks env and hardware; clearing restores auto.
        set_threads(3);
        assert_eq!(auto_threads(), 3);
        assert_eq!(Pool::auto().threads(), 3);
        set_threads(0);
        assert!(auto_threads() >= 1);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        /// The ISSUE-mandated ordering property: the dynamic splitter's
        /// output always matches the sequential map, element for element.
        #[test]
        fn dyn_splitter_output_order_matches_sequential(
            len in 0usize..200,
            seed in 0u64..1000,
            threads in 1usize..9,
        ) {
            let items: Vec<u64> = (0..len as u64).map(|i| i.wrapping_mul(seed ^ 0x9e37)).collect();
            let f = |x: &u64| x.wrapping_mul(31).wrapping_add(7);
            let seq: Vec<u64> = items.iter().map(f).collect();
            let par = Pool::new(threads).par_map_dyn(&items, f);
            prop_assert_eq!(par, seq);
        }
    }
}
