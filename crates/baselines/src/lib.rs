//! Re-implementations of the three baselines the HaLk paper compares
//! against (§IV-A): **ConE** (cones, linear negation, no difference),
//! **NewLook** (boxes, lossy difference, no negation), and **MLPMix**
//! (non-geometric MLPs, no difference).
//!
//! All three are built on the same `halk-nn` substrate, trained by the same
//! `halk-core::train` harness with the same budget, and scored by the same
//! evaluation protocol, so Tables I–IV and Figures 6b–6c compare operator
//! designs rather than engineering differences. The shared recursion lives
//! in [`embedder`]; each baseline is exactly its geometry.

pub mod cone;
pub mod embedder;
pub mod mlpmix;
pub mod newlook;

pub use cone::ConeModel;
pub use mlpmix::MlpMixModel;
pub use newlook::NewLookModel;

// Bounded-range clamp shared with HaLk's operators.
pub(crate) use halk_core::arcvar::clamp;

#[cfg(test)]
mod tests {
    use super::*;
    use halk_core::{HalkConfig, QueryModel};
    use halk_kg::{generate, Graph, SynthConfig};
    use halk_logic::{answers, Query, Sampler, Structure};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn graph() -> Graph {
        generate(&SynthConfig::fb237_like(), &mut StdRng::seed_from_u64(77))
    }

    fn models(g: &Graph) -> Vec<Box<dyn QueryModel + Send + Sync>> {
        let cfg = HalkConfig::tiny();
        vec![
            Box::new(ConeModel::new(g, cfg.clone())),
            Box::new(NewLookModel::new(g, cfg.clone())),
            Box::new(MlpMixModel::new(g, cfg)),
        ]
    }

    fn batch(g: &Graph, s: Structure, n: usize, seed: u64) -> Vec<halk_core::TrainExample> {
        let sampler = Sampler::new(g);
        let mut rng = StdRng::seed_from_u64(seed);
        sampler
            .sample_many(s, n, &mut rng)
            .into_iter()
            .map(|gq| {
                let ans = answers(&gq.query, g);
                let positive = ans.iter().next().expect("non-empty");
                let negatives = sampler.negatives(&ans, 4, &mut rng);
                halk_core::TrainExample {
                    positive,
                    negatives,
                    query: gq.query,
                }
            })
            .collect()
    }

    #[test]
    fn support_matrix_matches_table_dashes() {
        let g = graph();
        let cone = ConeModel::new(&g, HalkConfig::tiny());
        let newlook = NewLookModel::new(&g, HalkConfig::tiny());
        let mlp = MlpMixModel::new(&g, HalkConfig::tiny());
        // ConE and MLPMix: no difference columns (2d/3d/dp are "-").
        assert!(!cone.supports(Structure::D2) && !mlp.supports(Structure::Dp));
        assert!(cone.supports(Structure::In2) && mlp.supports(Structure::Pni));
        // NewLook: no negation columns.
        assert!(!newlook.supports(Structure::In2) && !newlook.supports(Structure::Pin));
        assert!(newlook.supports(Structure::D3));
    }

    #[test]
    fn all_baselines_train_on_supported_structures() {
        let g = graph();
        for mut m in models(&g) {
            for s in Structure::training() {
                if !m.supports(s) {
                    continue;
                }
                let b = batch(&g, s, 4, 5);
                let loss = m.train_batch(&b);
                assert!(
                    loss.is_finite() && loss > 0.0,
                    "{} on {s}: {loss}",
                    m.name()
                );
            }
        }
    }

    #[test]
    fn all_baselines_score_all_entities() {
        let g = graph();
        let t = g.triples()[0];
        let q = Query::atom(t.h, t.r);
        for m in models(&g) {
            let scores = m.score_all(&q);
            assert_eq!(scores.len(), g.n_entities());
            assert!(
                scores.iter().all(|s| s.is_finite() && *s >= 0.0),
                "{}: bad scores",
                m.name()
            );
        }
    }

    #[test]
    fn unsupported_queries_score_infinite() {
        let g = graph();
        let t = g.triples()[0];
        let diff = Query::Difference(vec![Query::atom(t.h, t.r), Query::atom(t.t, t.r)]);
        let cone = ConeModel::new(&g, HalkConfig::tiny());
        assert!(cone.score_all(&diff).iter().all(|s| s.is_infinite()));
        let neg = Query::atom(t.h, t.r).negate();
        let newlook = NewLookModel::new(&g, HalkConfig::tiny());
        assert!(newlook.score_all(&neg).iter().all(|s| s.is_infinite()));
    }

    #[test]
    fn baselines_loss_decreases_on_fixed_batch() {
        let g = graph();
        for mut m in models(&g) {
            let b = batch(&g, Structure::P1, 8, 6);
            let first = m.train_batch(&b);
            let mut last = first;
            for _ in 0..25 {
                last = m.train_batch(&b);
            }
            assert!(last < first, "{}: {first} -> {last}", m.name());
        }
    }

    #[test]
    fn cone_negation_is_involution_on_point() {
        // ConE's linear negation applied twice returns the original region.
        let g = graph();
        let cone = ConeModel::new(&g, HalkConfig::tiny());
        let t = g.triples()[0];
        let q = Query::atom(t.h, t.r);
        let qnn = q.clone().negate().negate();
        let s1 = cone.score_all(&q);
        let s2 = cone.score_all(&qnn);
        for (a, b) in s1.iter().zip(&s2) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn union_handled_by_dnf_in_all_baselines() {
        let g = graph();
        let t0 = g.triples()[0];
        let t1 = g.triples()[1];
        let q = Query::Union(vec![Query::atom(t0.h, t0.r), Query::atom(t1.h, t1.r)]);
        for m in models(&g) {
            let scores = m.score_all(&q);
            assert!(scores.iter().all(|s| s.is_finite()), "{}", m.name());
        }
    }
}
