//! MLPMix (Amayuelas et al., ICLR 2022) — non-geometric pure-MLP operators.
//!
//! A query is a plain `d`-vector; every operator is an MLP with no geometric
//! structure at all (no region, no cardinality). The paper finds it the
//! weakest and slowest-to-train baseline — "geometry-based methods might be
//! beneficial for logical queries" (§IV-B observation 4) — and this
//! implementation inherits that by construction. Supports negation (an MLP
//! like any other operator) but not difference (§IV-A).

use crate::embedder::{embed_plan, forward_loss, GeomOps};
use halk_core::{HalkConfig, QueryModel, TrainExample};
use halk_kg::Graph;
use halk_logic::plan::{PlanBindings, PlanCache};
use halk_logic::{Query, Structure};
use halk_nn::{Act, Mlp, ParamId, ParamStore, Tape, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A batch of query vectors on the tape (`B×d`).
#[derive(Debug, Clone, Copy)]
pub struct VecVar {
    /// The query representation.
    pub v: Var,
}

/// The MLPMix baseline model.
pub struct MlpMixModel {
    /// Hyper-parameters (shared shape with HaLk for fair timing).
    pub cfg: HalkConfig,
    /// All trainable parameters.
    pub store: ParamStore,
    n_entities: usize,
    ent: ParamId,
    rel: ParamId,
    proj: Mlp,
    inter_inner: Mlp,
    inter_outer: Mlp,
    neg: Mlp,
    plans: PlanCache,
}

impl MlpMixModel {
    /// Builds a freshly initialized MLPMix model.
    pub fn new(train_graph: &Graph, cfg: HalkConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0x371C);
        let mut store = ParamStore::new();
        let (d, h, layers) = (cfg.dim, cfg.hidden, cfg.mlp_layers);
        let n_entities = train_graph.n_entities();
        let ent = store.add(halk_nn::init::uniform(n_entities, d, -1.0, 1.0, &mut rng));
        let rel = store.add(halk_nn::init::uniform(
            train_graph.n_relations(),
            d,
            -1.0,
            1.0,
            &mut rng,
        ));
        // MLPMix's operators are *not* seeded by any geometric prior — the
        // projection MLP must learn the whole map. That is the method.
        let proj = Mlp::new(&mut store, 2 * d, h, d, layers.max(1), Act::Relu, &mut rng);
        let inter_inner = Mlp::new(&mut store, d, h, d, layers.max(1), Act::Relu, &mut rng);
        let inter_outer = Mlp::new(&mut store, d, h, d, layers.max(1), Act::Relu, &mut rng);
        let neg = Mlp::new(&mut store, d, h, d, layers.max(1), Act::Relu, &mut rng);
        Self {
            cfg,
            store,
            n_entities,
            ent,
            rel,
            proj,
            inter_inner,
            inter_outer,
            neg,
            plans: PlanCache::new(),
        }
    }

    /// Inference: the query vector of each DNF branch, read off the cached
    /// compiled plan.
    fn embed_query_values(&self, query: &Query) -> Option<Vec<Vec<f32>>> {
        let shape = self.plans.shape_for(query);
        let bindings = PlanBindings::of(query);
        let mut tape = Tape::new();
        let roots = embed_plan(self, &mut tape, &shape, std::slice::from_ref(&bindings))?;
        Some(
            roots
                .iter()
                .map(|rep| tape.value(rep.v).data.clone())
                .collect(),
        )
    }
}

impl GeomOps for MlpMixModel {
    type Rep = VecVar;

    fn anchor(&self, tape: &mut Tape, ids: &[u32]) -> VecVar {
        VecVar {
            v: tape.gather(&self.store, self.ent, ids),
        }
    }

    fn projection(&self, tape: &mut Tape, input: VecVar, rels: &[u32]) -> VecVar {
        let r = tape.gather(&self.store, self.rel, rels);
        let cat = tape.concat_cols(&[input.v, r]);
        VecVar {
            v: self.proj.forward(tape, &self.store, cat),
        }
    }

    fn intersection(&self, tape: &mut Tape, inputs: &[VecVar]) -> VecVar {
        // Permutation-invariant DeepSets: mean of per-input encodings.
        let inner: Vec<Var> = inputs
            .iter()
            .map(|x| self.inter_inner.forward(tape, &self.store, x.v))
            .collect();
        let mut acc = inner[0];
        for &v in &inner[1..] {
            acc = tape.add(acc, v);
        }
        let mean = tape.scale(acc, 1.0 / inner.len() as f32);
        VecVar {
            v: self.inter_outer.forward(tape, &self.store, mean),
        }
    }

    fn difference(&self, _tape: &mut Tape, _inputs: &[VecVar]) -> Option<VecVar> {
        None // MLPMix does not support the difference operator (§IV-A).
    }

    fn negation(&self, tape: &mut Tape, input: VecVar) -> Option<VecVar> {
        Some(VecVar {
            v: self.neg.forward(tape, &self.store, input.v),
        })
    }

    fn distance(&self, tape: &mut Tape, rep: VecVar, entity_ids: &[u32]) -> Var {
        // Plain L1 distance between the query vector and entity embeddings.
        let v = tape.gather(&self.store, self.ent, entity_ids);
        let diff = tape.sub(v, rep.v);
        tape.l1_rows(diff)
    }
}

impl QueryModel for MlpMixModel {
    fn name(&self) -> &'static str {
        "MLPMix"
    }

    fn supports(&self, s: Structure) -> bool {
        !s.has_difference()
    }

    fn train_batch(&mut self, batch: &[TrainExample]) -> f32 {
        let (tape, loss) = forward_loss(self, &self.plans, batch, self.cfg.gamma);
        let loss_val = tape.value(loss).item();
        self.store.zero_grads();
        tape.backward(loss, &mut self.store);
        self.store.clip_grad_norm(5.0);
        self.store.adam_step(self.cfg.lr);
        loss_val
    }

    fn score_all(&self, query: &Query) -> Vec<f32> {
        let Some(branches) = self.embed_query_values(query) else {
            return vec![f32::INFINITY; self.n_entities];
        };
        let scorer = halk_core::L1Scorer::new(&branches);
        let mut out = Vec::new();
        scorer.score_into(self.store.value(self.ent), &mut out);
        out
    }

    fn n_entities(&self) -> usize {
        self.n_entities
    }

    fn param_store(&self) -> Option<&halk_nn::ParamStore> {
        Some(&self.store)
    }

    fn param_store_mut(&mut self) -> Option<&mut halk_nn::ParamStore> {
        Some(&mut self.store)
    }
}
