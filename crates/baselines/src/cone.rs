//! ConE (Zhang et al., NeurIPS 2021) — cone/sector embeddings.
//!
//! ConE is the closest relative of HaLk: both live on the rotation paradigm.
//! Per dimension a query is a sector `(axis, aperture)`. Faithful to the
//! original: projection is relation rotation plus a learned correction,
//! intersection is SemanticAverage attention over axes plus CardMin
//! apertures, and **negation is the closed-form linear complement** — the
//! assumption the HaLk paper identifies as ConE's weakness (§III-E).
//! Differences HaLk claims over ConE and that this implementation keeps:
//! no start/end coordinated pair (attention sees `axis ‖ aperture`), no
//! group information, and no difference operator (§IV-A: "-" cells).

use crate::embedder::{embed_plan, forward_loss, GeomOps};
use halk_core::{HalkConfig, QueryModel, TrainExample};
use halk_kg::Graph;
use halk_logic::plan::{PlanBindings, PlanCache};
use halk_logic::{Query, Structure};
use halk_nn::{Act, Mlp, ParamId, ParamStore, Tape, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A batch of cones on the tape: axis angles and apertures (`B×d` each,
/// aperture in `[0, π]` by construction).
#[derive(Debug, Clone, Copy)]
pub struct ConeVar {
    /// Sector axis angles.
    pub axis: Var,
    /// Sector half-apertures.
    pub ap: Var,
}

/// The ConE baseline model.
pub struct ConeModel {
    /// Hyper-parameters (shared shape with HaLk for fair timing).
    pub cfg: HalkConfig,
    /// All trainable parameters.
    pub store: ParamStore,
    n_entities: usize,
    ent_axis: ParamId,
    rel_axis: ParamId,
    rel_ap: ParamId,
    proj_axis: Mlp,
    proj_ap: Mlp,
    inter_att: Mlp,
    inter_ds_inner: Mlp,
    inter_ds_outer: Mlp,
    plans: PlanCache,
}

impl ConeModel {
    /// Builds a freshly initialized ConE model.
    pub fn new(train_graph: &Graph, cfg: HalkConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xC0DE);
        let mut store = ParamStore::new();
        let (d, h, layers) = (cfg.dim, cfg.hidden, cfg.mlp_layers);
        let n_entities = train_graph.n_entities();
        let ent_axis = store.add(halk_nn::init::uniform_angles(n_entities, d, &mut rng));
        let rel_axis = store.add(halk_nn::init::uniform(
            train_graph.n_relations(),
            d,
            -0.5,
            0.5,
            &mut rng,
        ));
        let rel_ap = store.add(halk_nn::init::uniform(
            train_graph.n_relations(),
            d,
            0.0,
            0.3,
            &mut rng,
        ));
        let proj_axis = Mlp::new(&mut store, 2 * d, h, d, layers, Act::Relu, &mut rng);
        let proj_ap = Mlp::new(&mut store, 2 * d, h, d, layers, Act::Relu, &mut rng);
        let inter_att = Mlp::new(&mut store, 2 * d, h, d, layers, Act::Relu, &mut rng);
        let inter_ds_inner = Mlp::new(&mut store, 2 * d, h, d, layers, Act::Relu, &mut rng);
        let inter_ds_outer = Mlp::new(&mut store, d, h, d, layers, Act::Relu, &mut rng);
        proj_axis.scale_last_layer(&mut store, 0.0);
        proj_ap.scale_last_layer(&mut store, 0.0);
        Self {
            cfg,
            store,
            n_entities,
            ent_axis,
            rel_axis,
            rel_ap,
            proj_axis,
            proj_ap,
            inter_att,
            inter_ds_inner,
            inter_ds_outer,
            plans: PlanCache::new(),
        }
    }

    fn axis_ap_concat(&self, tape: &mut Tape, c: ConeVar) -> Var {
        tape.concat_cols(&[c.axis, c.ap])
    }

    /// Inference: per-dimension `(axis, aperture)` of each DNF branch,
    /// read off the cached compiled plan.
    fn embed_query_values(&self, query: &Query) -> Option<Vec<Vec<(f32, f32)>>> {
        let shape = self.plans.shape_for(query);
        let bindings = PlanBindings::of(query);
        let mut tape = Tape::new();
        let roots = embed_plan(self, &mut tape, &shape, std::slice::from_ref(&bindings))?;
        Some(
            roots
                .iter()
                .map(|rep| {
                    let a = tape.value(rep.axis);
                    let p = tape.value(rep.ap);
                    (0..self.cfg.dim)
                        .map(|j| (a.data[j], p.data[j].clamp(0.0, std::f32::consts::PI)))
                        .collect()
                })
                .collect(),
        )
    }
}

impl GeomOps for ConeModel {
    type Rep = ConeVar;

    fn anchor(&self, tape: &mut Tape, ids: &[u32]) -> ConeVar {
        let axis = tape.gather(&self.store, self.ent_axis, ids);
        let ap = tape.constant(ids.len(), self.cfg.dim, 0.0);
        ConeVar { axis, ap }
    }

    fn projection(&self, tape: &mut Tape, input: ConeVar, rels: &[u32]) -> ConeVar {
        let r_axis = tape.gather(&self.store, self.rel_axis, rels);
        let r_ap = tape.gather(&self.store, self.rel_ap, rels);
        let tilde_axis = tape.add(input.axis, r_axis);
        let tilde_ap = tape.add(input.ap, r_ap);
        let tilde = ConeVar {
            axis: tilde_axis,
            ap: tilde_ap,
        };
        let cat = self.axis_ap_concat(tape, tilde);
        // Bounded residual corrections (same adaptation as HaLk, so the
        // comparison isolates the operator design, not the training trick).
        let raw_a = self.proj_axis.forward(tape, &self.store, cat);
        let t_a = tape.tanh(raw_a);
        let corr_a = tape.scale(t_a, std::f32::consts::PI);
        let axis = tape.add(tilde_axis, corr_a);
        let raw_p = self.proj_ap.forward(tape, &self.store, cat);
        let t_p = tape.tanh(raw_p);
        let corr_p = tape.scale(t_p, std::f32::consts::FRAC_PI_2);
        let ap_raw = tape.add(tilde_ap, corr_p);
        let ap = crate::clamp(tape, ap_raw, 0.0, std::f32::consts::PI);
        ConeVar { axis, ap }
    }

    fn intersection(&self, tape: &mut Tape, inputs: &[ConeVar]) -> ConeVar {
        // SemanticAverage: softmax attention over MLP(axis ‖ ap), axes
        // averaged on the unit circle.
        let logits: Vec<Var> = inputs
            .iter()
            .map(|c| {
                let cat = self.axis_ap_concat(tape, *c);
                self.inter_att.forward(tape, &self.store, cat)
            })
            .collect();
        let mut max_logit = logits[0];
        for &l in &logits[1..] {
            max_logit = tape.max(max_logit, l);
        }
        let exps: Vec<Var> = logits
            .iter()
            .map(|&l| {
                let s = tape.sub(l, max_logit);
                tape.exp(s)
            })
            .collect();
        let mut denom = exps[0];
        for &e in &exps[1..] {
            denom = tape.add(denom, e);
        }
        let mut x_sa: Option<Var> = None;
        let mut y_sa: Option<Var> = None;
        for (c, &e) in inputs.iter().zip(&exps) {
            let w = tape.div(e, denom);
            let cos = tape.cos(c.axis);
            let sin = tape.sin(c.axis);
            let wx = tape.mul(w, cos);
            let wy = tape.mul(w, sin);
            x_sa = Some(match x_sa {
                Some(a) => tape.add(a, wx),
                None => wx,
            });
            y_sa = Some(match y_sa {
                Some(a) => tape.add(a, wy),
                None => wy,
            });
        }
        let axis = tape.atan2(y_sa.expect("nonempty"), x_sa.expect("nonempty"));
        // CardMin apertures.
        let mut min_ap = inputs[0].ap;
        for c in &inputs[1..] {
            min_ap = tape.min(min_ap, c.ap);
        }
        let inner: Vec<Var> = inputs
            .iter()
            .map(|c| {
                let cat = self.axis_ap_concat(tape, *c);
                self.inter_ds_inner.forward(tape, &self.store, cat)
            })
            .collect();
        let mut acc = inner[0];
        for &v in &inner[1..] {
            acc = tape.add(acc, v);
        }
        let mean = tape.scale(acc, 1.0 / inner.len() as f32);
        let outer = self.inter_ds_outer.forward(tape, &self.store, mean);
        let factor = tape.sigmoid(outer);
        let ap = tape.mul(min_ap, factor);
        ConeVar { axis, ap }
    }

    fn difference(&self, _tape: &mut Tape, _inputs: &[ConeVar]) -> Option<ConeVar> {
        None // ConE does not support the difference operator (§IV-A).
    }

    fn negation(&self, tape: &mut Tape, input: ConeVar) -> Option<ConeVar> {
        // The linear complement: axis + π, aperture π − ap (Eq. 13's seed is
        // exactly this; ConE stops here).
        let axis = tape.add_scalar(input.axis, std::f32::consts::PI);
        let neg_ap = tape.neg(input.ap);
        let ap = tape.add_scalar(neg_ap, std::f32::consts::PI);
        Some(ConeVar { axis, ap })
    }

    fn distance(&self, tape: &mut Tape, rep: ConeVar, entity_ids: &[u32]) -> Var {
        // d = d_o + λ·d_i with the same literal endpoint-chord reading used
        // for every model in this harness (see halk-core::model): boundary
        // angles are axis ± ap.
        let v = tape.gather(&self.store, self.ent_axis, entity_ids);
        let lo = tape.sub(rep.axis, rep.ap);
        let hi = tape.add(rep.axis, rep.ap);
        let chord = |tape: &mut Tape, a: Var, b: Var| {
            let d = tape.sub(a, b);
            let h = tape.scale(d, 0.5);
            let s = tape.sin(h);
            let ab = tape.abs(s);
            tape.scale(ab, 2.0)
        };
        let c_lo = chord(tape, v, lo);
        let c_hi = chord(tape, v, hi);
        let d_o = tape.min(c_lo, c_hi);
        let to_axis = chord(tape, v, rep.axis);
        let half = tape.scale(rep.ap, 0.5);
        let s = tape.sin(half);
        let abs = tape.abs(s);
        let cap = tape.scale(abs, 2.0);
        let d_i = tape.min(to_axis, cap);
        let so = tape.sum_cols(d_o);
        let si = tape.sum_cols(d_i);
        let wi = tape.scale(si, self.cfg.eta);
        tape.add(so, wi)
    }
}

impl QueryModel for ConeModel {
    fn name(&self) -> &'static str {
        "ConE"
    }

    fn supports(&self, s: Structure) -> bool {
        !s.has_difference()
    }

    fn train_batch(&mut self, batch: &[TrainExample]) -> f32 {
        let (tape, loss) = forward_loss(self, &self.plans, batch, self.cfg.gamma);
        let loss_val = tape.value(loss).item();
        self.store.zero_grads();
        tape.backward(loss, &mut self.store);
        self.store.clip_grad_norm(5.0);
        self.store.adam_step(self.cfg.lr);
        loss_val
    }

    fn score_all(&self, query: &Query) -> Vec<f32> {
        let Some(branches) = self.embed_query_values(query) else {
            return vec![f32::INFINITY; self.n_entities];
        };
        // A cone (axis, aperture) is exactly an arc with center = axis and
        // half-angle = aperture on the unit circle, and ConE's distance is
        // Eq. 15/16 taken literally — so the shared kernel applies as-is.
        let scorer = halk_core::ArcScorer::from_params(
            &branches,
            1.0,
            self.cfg.eta,
            halk_core::DistanceMode::LiteralEq16,
        );
        let trig = halk_core::EntityTrig::new(self.store.value(self.ent_axis));
        scorer.score_all(&trig)
    }

    fn n_entities(&self) -> usize {
        self.n_entities
    }

    fn score_cache(&self) -> Option<halk_core::ScoreCache> {
        // The per-entity half-angle trig of the axis table is query-
        // independent; precompute it once per parameter state so evaluation
        // sweeps don't rebuild it for every query.
        Some(Box::new(halk_core::EntityTrig::new(
            self.store.value(self.ent_axis),
        )))
    }

    fn score_all_cached(&self, query: &Query, cache: &halk_core::ScoreCache) -> Vec<f32> {
        let trig = cache
            .downcast_ref::<halk_core::EntityTrig>()
            .expect("cache built by a different model");
        let Some(branches) = self.embed_query_values(query) else {
            return vec![f32::INFINITY; self.n_entities];
        };
        let scorer = halk_core::ArcScorer::from_params(
            &branches,
            1.0,
            self.cfg.eta,
            halk_core::DistanceMode::LiteralEq16,
        );
        scorer.score_all(trig)
    }

    fn param_store(&self) -> Option<&halk_nn::ParamStore> {
        Some(&self.store)
    }

    fn param_store_mut(&mut self) -> Option<&mut halk_nn::ParamStore> {
        Some(&mut self.store)
    }
}
