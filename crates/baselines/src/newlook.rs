//! NewLook (Liu et al., KDD 2021) — box embeddings with the difference
//! operator.
//!
//! A query is an axis-aligned box `(center, offset)` in `R^d`. NewLook is
//! the strongest baseline on difference structures (Tables I–II), but its
//! box difference is inherently lossy — removing the middle of an interval
//! cannot be expressed by one interval (Fig. 5a; `BoxSeg::difference_lossy`
//! in `halk-geometry` demonstrates the failure in closed form) — and its
//! attention operates on raw coordinate values. No negation (§IV-A: the
//! universal set has no box).

use crate::embedder::{embed_plan, forward_loss, GeomOps};
use halk_core::{HalkConfig, QueryModel, TrainExample};
use halk_kg::Graph;
use halk_logic::plan::{PlanBindings, PlanCache};
use halk_logic::{Query, Structure};
use halk_nn::{Act, Mlp, ParamId, ParamStore, Tape, Var};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A batch of boxes on the tape (`B×d` centers, `B×d` non-negative offsets).
#[derive(Debug, Clone, Copy)]
pub struct BoxVar {
    /// Box centers.
    pub center: Var,
    /// Box half-widths (kept non-negative by softplus constructions).
    pub offset: Var,
}

/// The NewLook baseline model.
pub struct NewLookModel {
    /// Hyper-parameters (shared shape with HaLk for fair timing).
    pub cfg: HalkConfig,
    /// All trainable parameters.
    pub store: ParamStore,
    n_entities: usize,
    ent_center: ParamId,
    rel_center: ParamId,
    rel_offset: ParamId,
    proj_center: Mlp,
    proj_offset: Mlp,
    inter_att: Mlp,
    inter_ds_inner: Mlp,
    inter_ds_outer: Mlp,
    diff_att: Mlp,
    diff_ds_inner: Mlp,
    diff_ds_outer: Mlp,
    plans: PlanCache,
}

impl NewLookModel {
    /// Builds a freshly initialized NewLook model.
    pub fn new(train_graph: &Graph, cfg: HalkConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(cfg.seed ^ 0xB0F5);
        let mut store = ParamStore::new();
        let (d, h, layers) = (cfg.dim, cfg.hidden, cfg.mlp_layers);
        let n_entities = train_graph.n_entities();
        // Centers live in a bounded range comparable to the circle models so
        // γ/η transfer; the geometry is still unbounded R^d.
        let ent_center = store.add(halk_nn::init::uniform(n_entities, d, -2.0, 2.0, &mut rng));
        let rel_center = store.add(halk_nn::init::uniform(
            train_graph.n_relations(),
            d,
            -0.5,
            0.5,
            &mut rng,
        ));
        let rel_offset = store.add(halk_nn::init::uniform(
            train_graph.n_relations(),
            d,
            0.0,
            0.3,
            &mut rng,
        ));
        let proj_center = Mlp::new(&mut store, 2 * d, h, d, layers, Act::Relu, &mut rng);
        let proj_offset = Mlp::new(&mut store, 2 * d, h, d, layers, Act::Relu, &mut rng);
        let inter_att = Mlp::new(&mut store, 2 * d, h, d, layers, Act::Relu, &mut rng);
        let inter_ds_inner = Mlp::new(&mut store, 2 * d, h, d, layers, Act::Relu, &mut rng);
        let inter_ds_outer = Mlp::new(&mut store, d, h, d, layers, Act::Relu, &mut rng);
        let diff_att = Mlp::new(&mut store, 2 * d, h, d, layers, Act::Relu, &mut rng);
        let diff_ds_inner = Mlp::new(&mut store, 2 * d, h, d, layers, Act::Relu, &mut rng);
        let diff_ds_outer = Mlp::new(&mut store, d, h, d, layers, Act::Relu, &mut rng);
        proj_center.scale_last_layer(&mut store, 0.0);
        proj_offset.scale_last_layer(&mut store, 0.0);
        Self {
            cfg,
            store,
            n_entities,
            ent_center,
            rel_center,
            rel_offset,
            proj_center,
            proj_offset,
            inter_att,
            inter_ds_inner,
            inter_ds_outer,
            diff_att,
            diff_ds_inner,
            diff_ds_outer,
            plans: PlanCache::new(),
        }
    }

    fn cat(&self, tape: &mut Tape, b: BoxVar) -> Var {
        tape.concat_cols(&[b.center, b.offset])
    }

    /// Raw-value softmax attention over centers — NewLook's scheme, which is
    /// fine in `R^d` (no periodicity) but is exactly what breaks on circles
    /// (the Supplementary's semantic-inconsistency argument).
    fn attention_center(&self, tape: &mut Tape, att: &Mlp, inputs: &[BoxVar]) -> Var {
        let logits: Vec<Var> = inputs
            .iter()
            .map(|b| {
                let cat = self.cat(tape, *b);
                att.forward(tape, &self.store, cat)
            })
            .collect();
        let mut max_logit = logits[0];
        for &l in &logits[1..] {
            max_logit = tape.max(max_logit, l);
        }
        let exps: Vec<Var> = logits
            .iter()
            .map(|&l| {
                let s = tape.sub(l, max_logit);
                tape.exp(s)
            })
            .collect();
        let mut denom = exps[0];
        for &e in &exps[1..] {
            denom = tape.add(denom, e);
        }
        let mut acc: Option<Var> = None;
        for (b, &e) in inputs.iter().zip(&exps) {
            let w = tape.div(e, denom);
            let wc = tape.mul(w, b.center);
            acc = Some(match acc {
                Some(a) => tape.add(a, wc),
                None => wc,
            });
        }
        acc.expect("nonempty")
    }

    fn deepsets_factor(
        &self,
        tape: &mut Tape,
        inner_net: &Mlp,
        outer_net: &Mlp,
        ins: &[Var],
    ) -> Var {
        let mut acc = ins[0];
        for &v in &ins[1..] {
            acc = tape.add(acc, v);
        }
        let mean = tape.scale(acc, 1.0 / ins.len() as f32);
        let outer = outer_net.forward(tape, &self.store, mean);
        let _ = inner_net; // inner applied by callers before this point
        tape.sigmoid(outer)
    }

    /// Inference: per-dimension `(center, offset)` of each DNF branch,
    /// read off the cached compiled plan.
    fn embed_query_values(&self, query: &Query) -> Option<Vec<Vec<(f32, f32)>>> {
        let shape = self.plans.shape_for(query);
        let bindings = PlanBindings::of(query);
        let mut tape = Tape::new();
        let roots = embed_plan(self, &mut tape, &shape, std::slice::from_ref(&bindings))?;
        Some(
            roots
                .iter()
                .map(|rep| {
                    let c = tape.value(rep.center);
                    let o = tape.value(rep.offset);
                    (0..self.cfg.dim)
                        .map(|j| (c.data[j], o.data[j].max(0.0)))
                        .collect()
                })
                .collect(),
        )
    }
}

impl GeomOps for NewLookModel {
    type Rep = BoxVar;

    fn anchor(&self, tape: &mut Tape, ids: &[u32]) -> BoxVar {
        let center = tape.gather(&self.store, self.ent_center, ids);
        let offset = tape.constant(ids.len(), self.cfg.dim, 0.0);
        BoxVar { center, offset }
    }

    fn projection(&self, tape: &mut Tape, input: BoxVar, rels: &[u32]) -> BoxVar {
        // Query2Box-style translation seed plus NewLook's learned correction.
        let r_c = tape.gather(&self.store, self.rel_center, rels);
        let r_o = tape.gather(&self.store, self.rel_offset, rels);
        let tilde_c = tape.add(input.center, r_c);
        let tilde_o = tape.add(input.offset, r_o);
        let tilde = BoxVar {
            center: tilde_c,
            offset: tilde_o,
        };
        let cat = self.cat(tape, tilde);
        let raw_c = self.proj_center.forward(tape, &self.store, cat);
        let corr_c = tape.tanh(raw_c);
        let center = tape.add(tilde_c, corr_c);
        let raw_o = self.proj_offset.forward(tape, &self.store, cat);
        let corr_o = tape.tanh(raw_o);
        let off_raw = tape.add(tilde_o, corr_o);
        let offset = tape.relu(off_raw);
        BoxVar { center, offset }
    }

    fn intersection(&self, tape: &mut Tape, inputs: &[BoxVar]) -> BoxVar {
        let center = self.attention_center(tape, &self.inter_att, inputs);
        let mut min_off = inputs[0].offset;
        for b in &inputs[1..] {
            min_off = tape.min(min_off, b.offset);
        }
        let inner: Vec<Var> = inputs
            .iter()
            .map(|b| {
                let cat = self.cat(tape, *b);
                self.inter_ds_inner.forward(tape, &self.store, cat)
            })
            .collect();
        let factor = self.deepsets_factor(tape, &self.inter_ds_inner, &self.inter_ds_outer, &inner);
        let offset = tape.mul(min_off, factor);
        BoxVar { center, offset }
    }

    fn difference(&self, tape: &mut Tape, inputs: &[BoxVar]) -> Option<BoxVar> {
        // NewLook's difference: attention keeps the center near the minuend,
        // a DeepSets factor shrinks the minuend's offset based on raw-value
        // overlaps. The single surviving box is the lossy approximation of
        // Fig. 5a.
        let center = self.attention_center(tape, &self.diff_att, inputs);
        let first = inputs[0];
        let inner: Vec<Var> = inputs[1..]
            .iter()
            .map(|b| {
                let dc = tape.sub(first.center, b.center);
                let do_ = tape.sub(first.offset, b.offset);
                let cat = tape.concat_cols(&[dc, do_]);
                self.diff_ds_inner.forward(tape, &self.store, cat)
            })
            .collect();
        let factor = self.deepsets_factor(tape, &self.diff_ds_inner, &self.diff_ds_outer, &inner);
        let offset = tape.mul(first.offset, factor);
        Some(BoxVar { center, offset })
    }

    fn negation(&self, _tape: &mut Tape, _input: BoxVar) -> Option<BoxVar> {
        None // Boxes cannot express the universal set (§I / §IV-A).
    }

    fn distance(&self, tape: &mut Tape, rep: BoxVar, entity_ids: &[u32]) -> Var {
        // Query2Box: d_out = ‖relu(|v − c| − o)‖₁, d_in = ‖min(|v − c|, o)‖₁.
        let v = tape.gather(&self.store, self.ent_center, entity_ids);
        let diff = tape.sub(v, rep.center);
        let adist = tape.abs(diff);
        let out_raw = tape.sub(adist, rep.offset);
        let d_out = tape.relu(out_raw);
        let d_in = tape.min(adist, rep.offset);
        let so = tape.sum_cols(d_out);
        let si = tape.sum_cols(d_in);
        let wi = tape.scale(si, self.cfg.eta);
        tape.add(so, wi)
    }
}

impl QueryModel for NewLookModel {
    fn name(&self) -> &'static str {
        "NewLook"
    }

    fn supports(&self, s: Structure) -> bool {
        !s.has_negation()
    }

    fn train_batch(&mut self, batch: &[TrainExample]) -> f32 {
        let (tape, loss) = forward_loss(self, &self.plans, batch, self.cfg.gamma);
        let loss_val = tape.value(loss).item();
        self.store.zero_grads();
        tape.backward(loss, &mut self.store);
        self.store.clip_grad_norm(5.0);
        self.store.adam_step(self.cfg.lr);
        loss_val
    }

    fn score_all(&self, query: &Query) -> Vec<f32> {
        let Some(branches) = self.embed_query_values(query) else {
            return vec![f32::INFINITY; self.n_entities];
        };
        let scorer = halk_core::BoxScorer::new(&branches, self.cfg.eta);
        let mut out = Vec::new();
        scorer.score_into(self.store.value(self.ent_center), &mut out);
        out
    }

    fn n_entities(&self) -> usize {
        self.n_entities
    }

    fn param_store(&self) -> Option<&halk_nn::ParamStore> {
        Some(&self.store)
    }

    fn param_store_mut(&mut self) -> Option<&mut halk_nn::ParamStore> {
        Some(&mut self.store)
    }
}
