//! Generic query embedding over a pluggable geometry.
//!
//! Each baseline differs only in its per-operator geometry (cones, boxes,
//! plain vectors); plan execution, batching, loss and scoring are
//! identical. [`GeomOps`] captures the geometry; [`embed_plan`] and
//! [`forward_loss`] supply everything else, so a baseline is exactly its
//! operator definitions — the same factoring the comparison needs
//! (Fig. 6b times operators, not harness differences). The pre-plan
//! recursive walker lives in [`reference`] for the bit-identity tests.

use halk_core::loss::margin_loss;
use halk_core::TrainExample;
use halk_logic::plan::{PlanBindings, PlanCache, PlanOp, PlanShape};
use halk_logic::Query;
use halk_nn::{Tape, Var};

/// A query-region geometry: how to embed anchors, apply operators, and
/// measure distances, all on the tape.
pub trait GeomOps {
    /// The tape-level region representation (a small bundle of `Var`s).
    type Rep: Copy;

    /// Embeds a batch of anchor entities.
    fn anchor(&self, tape: &mut Tape, ids: &[u32]) -> Self::Rep;

    /// Projection by a batch of relations.
    fn projection(&self, tape: &mut Tape, input: Self::Rep, rels: &[u32]) -> Self::Rep;

    /// Intersection of `k ≥ 2` regions.
    fn intersection(&self, tape: &mut Tape, inputs: &[Self::Rep]) -> Self::Rep;

    /// Difference (first minus rest); `None` if the geometry cannot express
    /// it (ConE, MLPMix — §IV-A).
    fn difference(&self, tape: &mut Tape, inputs: &[Self::Rep]) -> Option<Self::Rep>;

    /// Complement; `None` if the geometry cannot express it (NewLook).
    fn negation(&self, tape: &mut Tape, input: Self::Rep) -> Option<Self::Rep>;

    /// Distance (`B×1`, lower = closer) from a batch of entity ids to the
    /// region batch.
    fn distance(&self, tape: &mut Tape, rep: Self::Rep, entity_ids: &[u32]) -> Var;
}

/// Executes a compiled plan over a batch of binding tables, returning one
/// region batch per DNF branch root. The union rewrite happened at compile
/// time; shared subtrees embed once for all branches.
///
/// Returns `None` when the geometry lacks an operator the plan uses.
///
/// # Panics
/// If the batch is empty or a binding table does not fit `shape`.
pub fn embed_plan<G: GeomOps>(
    geom: &G,
    tape: &mut Tape,
    shape: &PlanShape,
    bindings: &[PlanBindings],
) -> Option<Vec<G::Rep>> {
    assert!(!bindings.is_empty(), "empty batch");
    let mut slots: Vec<G::Rep> = Vec::with_capacity(shape.n_slots());
    for op in shape.ops() {
        let rep = match op {
            PlanOp::Anchor { arg } => {
                let ids: Vec<u32> = bindings
                    .iter()
                    .map(|b| b.anchors[*arg as usize].0)
                    .collect();
                geom.anchor(tape, &ids)
            }
            PlanOp::Projection { rel, input } => {
                let rels: Vec<u32> = bindings.iter().map(|b| b.rels[*rel as usize].0).collect();
                geom.projection(tape, slots[*input as usize], &rels)
            }
            PlanOp::Intersection { inputs } => {
                let reps: Vec<G::Rep> = inputs.iter().map(|&i| slots[i as usize]).collect();
                geom.intersection(tape, &reps)
            }
            PlanOp::Difference { inputs } => {
                let reps: Vec<G::Rep> = inputs.iter().map(|&i| slots[i as usize]).collect();
                geom.difference(tape, &reps)?
            }
            PlanOp::Negation { input } => geom.negation(tape, slots[*input as usize])?,
        };
        slots.push(rep);
    }
    Some(shape.roots().iter().map(|&r| slots[r as usize]).collect())
}

/// The forward pass shared by all baselines: execute the batch's compiled
/// plan and build the margin loss (Eq. 17 without HaLk's group term).
/// Returns the tape and the loss node; the caller runs `backward` and its
/// optimizer (the only part that needs `&mut` access to the parameter
/// store). Training batches are same-structure, so `plans` compiles each
/// structure exactly once across the whole run.
pub fn forward_loss<G: GeomOps>(
    geom: &G,
    plans: &PlanCache,
    batch: &[TrainExample],
    gamma: f32,
) -> (Tape, Var) {
    assert!(!batch.is_empty());
    let mut tape = Tape::new();
    let shape = plans.shape_for(&batch[0].query);
    let bindings: Vec<PlanBindings> = batch.iter().map(|ex| PlanBindings::of(&ex.query)).collect();
    let roots = embed_plan(geom, &mut tape, &shape, &bindings)
        .expect("train_batch called with an unsupported structure");
    assert_eq!(roots.len(), 1, "training structures are union-free (§IV-A)");
    let rep = roots[0];
    let pos_ids: Vec<u32> = batch.iter().map(|ex| ex.positive.0).collect();
    let d_pos = geom.distance(&mut tape, rep, &pos_ids);
    let m = batch
        .iter()
        .map(|ex| ex.negatives.len())
        .min()
        .expect("nonempty batch");
    assert!(m > 0, "training requires negatives");
    let d_negs: Vec<Var> = (0..m)
        .map(|j| {
            let ids: Vec<u32> = batch.iter().map(|ex| ex.negatives[j].0).collect();
            geom.distance(&mut tape, rep, &ids)
        })
        .collect();
    let loss = margin_loss(&mut tape, d_pos, None, &d_negs, None, gamma);
    (tape, loss)
}

/// The retained recursive AST interpreter over [`GeomOps`]. No production
/// path calls into here; the plan-equivalence tests run it side by side
/// with [`embed_plan`] to prove bitwise-identical scores and losses.
pub mod reference {
    use super::*;
    use halk_logic::to_dnf;

    /// Recursively embeds a batch of same-structure, union-free queries —
    /// the pre-plan form of [`super::embed_plan`].
    ///
    /// Returns `None` when the geometry lacks an operator the query uses.
    ///
    /// # Panics
    /// On heterogeneous batches or un-rewritten unions (run DNF first).
    pub fn embed_batch<G: GeomOps>(
        geom: &G,
        tape: &mut Tape,
        queries: &[&Query],
    ) -> Option<G::Rep> {
        assert!(!queries.is_empty(), "empty batch");
        match queries[0] {
            Query::Anchor(_) => {
                let ids: Vec<u32> = queries
                    .iter()
                    .map(|q| match q {
                        Query::Anchor(e) => e.0,
                        other => panic!("heterogeneous batch: {}", other.render()),
                    })
                    .collect();
                Some(geom.anchor(tape, &ids))
            }
            Query::Projection { .. } => {
                let mut rels = Vec::with_capacity(queries.len());
                let mut inputs = Vec::with_capacity(queries.len());
                for q in queries {
                    match q {
                        Query::Projection { rel, input } => {
                            rels.push(rel.0);
                            inputs.push(&**input);
                        }
                        other => panic!("heterogeneous batch: {}", other.render()),
                    }
                }
                let rep = embed_batch(geom, tape, &inputs)?;
                Some(geom.projection(tape, rep, &rels))
            }
            Query::Intersection(bs0) => {
                let reps = embed_branches(geom, tape, queries, bs0.len(), |q| match q {
                    Query::Intersection(bs) => bs,
                    other => panic!("heterogeneous batch: {}", other.render()),
                })?;
                Some(geom.intersection(tape, &reps))
            }
            Query::Difference(bs0) => {
                let reps = embed_branches(geom, tape, queries, bs0.len(), |q| match q {
                    Query::Difference(bs) => bs,
                    other => panic!("heterogeneous batch: {}", other.render()),
                })?;
                geom.difference(tape, &reps)
            }
            Query::Negation(_) => {
                let inners: Vec<&Query> = queries
                    .iter()
                    .map(|q| match q {
                        Query::Negation(inner) => &**inner,
                        other => panic!("heterogeneous batch: {}", other.render()),
                    })
                    .collect();
                let rep = embed_batch(geom, tape, &inners)?;
                geom.negation(tape, rep)
            }
            Query::Union(_) => panic!("unions must be removed by DNF before embedding"),
        }
    }

    fn embed_branches<'q, G: GeomOps>(
        geom: &G,
        tape: &mut Tape,
        queries: &[&'q Query],
        k: usize,
        get: impl Fn(&'q Query) -> &'q [Query],
    ) -> Option<Vec<G::Rep>> {
        (0..k)
            .map(|j| {
                let branch: Vec<&Query> = queries
                    .iter()
                    .map(|q| {
                        let bs = get(q);
                        assert_eq!(bs.len(), k, "heterogeneous branch arity");
                        &bs[j]
                    })
                    .collect();
                embed_batch(geom, tape, &branch)
            })
            .collect()
    }

    /// AST-walking single-query embedding: DNF per call, a fresh tape per
    /// branch, `read` extracting whatever values the caller scores with.
    /// The reference counterpart of the plan-based `embed_query_values`
    /// paths in each baseline.
    pub fn embed_query_with<G: GeomOps, T>(
        geom: &G,
        query: &Query,
        mut read: impl FnMut(&mut Tape, G::Rep) -> T,
    ) -> Option<Vec<T>> {
        to_dnf(query)
            .iter()
            .map(|branch| {
                let mut tape = Tape::new();
                let rep = embed_batch(geom, &mut tape, &[branch])?;
                Some(read(&mut tape, rep))
            })
            .collect()
    }

    /// Recursive-embedding form of [`super::forward_loss`], for the
    /// train-loss bit-identity tests.
    pub fn forward_loss_ast<G: GeomOps>(
        geom: &G,
        batch: &[TrainExample],
        gamma: f32,
    ) -> (Tape, Var) {
        assert!(!batch.is_empty());
        let mut tape = Tape::new();
        let queries: Vec<&Query> = batch.iter().map(|ex| &ex.query).collect();
        let rep = embed_batch(geom, &mut tape, &queries)
            .expect("train_batch called with an unsupported structure");
        let pos_ids: Vec<u32> = batch.iter().map(|ex| ex.positive.0).collect();
        let d_pos = geom.distance(&mut tape, rep, &pos_ids);
        let m = batch
            .iter()
            .map(|ex| ex.negatives.len())
            .min()
            .expect("nonempty batch");
        assert!(m > 0, "training requires negatives");
        let d_negs: Vec<Var> = (0..m)
            .map(|j| {
                let ids: Vec<u32> = batch.iter().map(|ex| ex.negatives[j].0).collect();
                geom.distance(&mut tape, rep, &ids)
            })
            .collect();
        let loss = margin_loss(&mut tape, d_pos, None, &d_negs, None, gamma);
        (tape, loss)
    }
}
