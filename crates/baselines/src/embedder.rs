//! Generic query embedding over a pluggable geometry.
//!
//! Each baseline differs only in its per-operator geometry (cones, boxes,
//! plain vectors); the recursion over the computation tree, batching, loss
//! and scoring are identical. [`GeomOps`] captures the geometry;
//! [`embed_batch`] and [`forward_loss`] supply everything else, so a
//! baseline is exactly its operator definitions — the same factoring the
//! comparison needs (Fig. 6b times operators, not harness differences).

use halk_core::loss::margin_loss;
use halk_core::TrainExample;
use halk_logic::Query;
use halk_nn::{Tape, Var};

/// A query-region geometry: how to embed anchors, apply operators, and
/// measure distances, all on the tape.
pub trait GeomOps {
    /// The tape-level region representation (a small bundle of `Var`s).
    type Rep: Copy;

    /// Embeds a batch of anchor entities.
    fn anchor(&self, tape: &mut Tape, ids: &[u32]) -> Self::Rep;

    /// Projection by a batch of relations.
    fn projection(&self, tape: &mut Tape, input: Self::Rep, rels: &[u32]) -> Self::Rep;

    /// Intersection of `k ≥ 2` regions.
    fn intersection(&self, tape: &mut Tape, inputs: &[Self::Rep]) -> Self::Rep;

    /// Difference (first minus rest); `None` if the geometry cannot express
    /// it (ConE, MLPMix — §IV-A).
    fn difference(&self, tape: &mut Tape, inputs: &[Self::Rep]) -> Option<Self::Rep>;

    /// Complement; `None` if the geometry cannot express it (NewLook).
    fn negation(&self, tape: &mut Tape, input: Self::Rep) -> Option<Self::Rep>;

    /// Distance (`B×1`, lower = closer) from a batch of entity ids to the
    /// region batch.
    fn distance(&self, tape: &mut Tape, rep: Self::Rep, entity_ids: &[u32]) -> Var;
}

/// Embeds a batch of same-structure, union-free queries.
///
/// Returns `None` when the geometry lacks an operator the query uses.
///
/// # Panics
/// On heterogeneous batches or un-rewritten unions (run DNF first).
pub fn embed_batch<G: GeomOps>(geom: &G, tape: &mut Tape, queries: &[&Query]) -> Option<G::Rep> {
    assert!(!queries.is_empty(), "empty batch");
    match queries[0] {
        Query::Anchor(_) => {
            let ids: Vec<u32> = queries
                .iter()
                .map(|q| match q {
                    Query::Anchor(e) => e.0,
                    other => panic!("heterogeneous batch: {}", other.render()),
                })
                .collect();
            Some(geom.anchor(tape, &ids))
        }
        Query::Projection { .. } => {
            let mut rels = Vec::with_capacity(queries.len());
            let mut inputs = Vec::with_capacity(queries.len());
            for q in queries {
                match q {
                    Query::Projection { rel, input } => {
                        rels.push(rel.0);
                        inputs.push(&**input);
                    }
                    other => panic!("heterogeneous batch: {}", other.render()),
                }
            }
            let rep = embed_batch(geom, tape, &inputs)?;
            Some(geom.projection(tape, rep, &rels))
        }
        Query::Intersection(bs0) => {
            let reps = embed_branches(geom, tape, queries, bs0.len(), |q| match q {
                Query::Intersection(bs) => bs,
                other => panic!("heterogeneous batch: {}", other.render()),
            })?;
            Some(geom.intersection(tape, &reps))
        }
        Query::Difference(bs0) => {
            let reps = embed_branches(geom, tape, queries, bs0.len(), |q| match q {
                Query::Difference(bs) => bs,
                other => panic!("heterogeneous batch: {}", other.render()),
            })?;
            geom.difference(tape, &reps)
        }
        Query::Negation(_) => {
            let inners: Vec<&Query> = queries
                .iter()
                .map(|q| match q {
                    Query::Negation(inner) => &**inner,
                    other => panic!("heterogeneous batch: {}", other.render()),
                })
                .collect();
            let rep = embed_batch(geom, tape, &inners)?;
            geom.negation(tape, rep)
        }
        Query::Union(_) => panic!("unions must be removed by DNF before embedding"),
    }
}

fn embed_branches<'q, G: GeomOps>(
    geom: &G,
    tape: &mut Tape,
    queries: &[&'q Query],
    k: usize,
    get: impl Fn(&'q Query) -> &'q [Query],
) -> Option<Vec<G::Rep>> {
    (0..k)
        .map(|j| {
            let branch: Vec<&Query> = queries
                .iter()
                .map(|q| {
                    let bs = get(q);
                    assert_eq!(bs.len(), k, "heterogeneous branch arity");
                    &bs[j]
                })
                .collect();
            embed_batch(geom, tape, &branch)
        })
        .collect()
}

/// The forward pass shared by all baselines: embed the batch and build the
/// margin loss (Eq. 17 without HaLk's group term). Returns the tape and the
/// loss node; the caller runs `backward` and its optimizer (the only part
/// that needs `&mut` access to the parameter store).
pub fn forward_loss<G: GeomOps>(geom: &G, batch: &[TrainExample], gamma: f32) -> (Tape, Var) {
    assert!(!batch.is_empty());
    let mut tape = Tape::new();
    let queries: Vec<&Query> = batch.iter().map(|ex| &ex.query).collect();
    let rep = embed_batch(geom, &mut tape, &queries)
        .expect("train_batch called with an unsupported structure");
    let pos_ids: Vec<u32> = batch.iter().map(|ex| ex.positive.0).collect();
    let d_pos = geom.distance(&mut tape, rep, &pos_ids);
    let m = batch
        .iter()
        .map(|ex| ex.negatives.len())
        .min()
        .expect("nonempty batch");
    assert!(m > 0, "training requires negatives");
    let d_negs: Vec<Var> = (0..m)
        .map(|j| {
            let ids: Vec<u32> = batch.iter().map(|ex| ex.negatives[j].0).collect();
            geom.distance(&mut tape, rep, &ids)
        })
        .collect();
    let loss = margin_loss(&mut tape, d_pos, None, &d_negs, None, gamma);
    (tape, loss)
}
