//! Plan-vs-AST bit-identity for the baselines (PR 4): ConE, NewLook and
//! MLPMix run the same compiled-plan executor as HaLk; this suite pins the
//! plan path to the retained recursive walker (`embedder::reference`) —
//! branch embeddings and first training losses must match bit for bit, and
//! unsupported structures must still score every entity at infinity.

use halk_baselines::embedder::{embed_plan, reference, GeomOps};
use halk_baselines::{ConeModel, MlpMixModel, NewLookModel};
use halk_core::{HalkConfig, QueryModel, TrainExample};
use halk_kg::{generate, Graph, SynthConfig};
use halk_logic::plan::{PlanBindings, PlanShape};
use halk_logic::{answers, Query, Sampler, Structure};
use halk_nn::Tape;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::f32::consts::PI;

fn graph() -> Graph {
    generate(&SynthConfig::fb237_like(), &mut StdRng::seed_from_u64(23))
}

fn examples(g: &Graph, s: Structure, n: usize, seed: u64) -> Vec<TrainExample> {
    let sampler = Sampler::new(g);
    let mut rng = StdRng::seed_from_u64(seed);
    sampler
        .sample_many(s, n, &mut rng)
        .into_iter()
        .map(|gq| {
            let ans = answers(&gq.query, g);
            let positive = ans.iter().next().expect("non-empty");
            let negatives = sampler.negatives(&ans, 4, &mut rng);
            TrainExample {
                query: gq.query,
                positive,
                negatives,
            }
        })
        .collect()
}

/// Branch values off the compiled plan, mirroring each model's private
/// `embed_query_values`: one tape, shared slots, roots read in branch order.
fn plan_branches<G: GeomOps, T>(
    geom: &G,
    query: &Query,
    mut read: impl FnMut(&mut Tape, G::Rep) -> T,
) -> Option<Vec<T>> {
    let shape = PlanShape::compile(query);
    let bindings = PlanBindings::of(query);
    let mut tape = Tape::new();
    let roots = embed_plan(geom, &mut tape, &shape, std::slice::from_ref(&bindings))?;
    Some(roots.into_iter().map(|rep| read(&mut tape, rep)).collect())
}

/// Runs the branch-equivalence check for one model over every structure:
/// supported structures must embed to bitwise-identical branch values under
/// the plan executor and the recursive reference; unsupported ones must
/// return `None` from both and score all entities at infinity.
fn check_branches<M, T>(model: &M, g: &Graph, read: impl Fn(&mut Tape, M::Rep) -> T + Copy)
where
    M: GeomOps + QueryModel,
    T: PartialEq + std::fmt::Debug,
{
    let sampler = Sampler::new(g);
    let mut rng = StdRng::seed_from_u64(29);
    for s in Structure::all() {
        for gq in sampler.sample_many(s, 2, &mut rng) {
            let plan = plan_branches(model, &gq.query, read);
            let ast = reference::embed_query_with(model, &gq.query, read);
            assert_eq!(plan, ast, "{} on {s}: {}", model.name(), gq.query.render());
            if model.supports(s) {
                assert!(plan.is_some(), "{} must embed {s}", model.name());
            } else {
                assert!(plan.is_none(), "{} must reject {s}", model.name());
                let scores = model.score_all(&gq.query);
                assert_eq!(scores.len(), model.n_entities());
                assert!(
                    scores.iter().all(|v| v.is_infinite()),
                    "{} unsupported {s} must score at infinity",
                    model.name()
                );
            }
        }
    }
}

/// First training loss on the compiled plan equals the recursive reference
/// bit for bit, for every training structure the model supports.
fn check_train_loss<M: GeomOps + QueryModel>(model: &mut M, g: &Graph, gamma: f32) {
    for (i, s) in Structure::training().into_iter().enumerate() {
        if !model.supports(s) {
            continue;
        }
        let batch = examples(g, s, 6, 60 + i as u64);
        let (tape, loss) = reference::forward_loss_ast(model, &batch, gamma);
        let want = tape.value(loss).item();
        let got = model.train_batch(&batch);
        assert_eq!(
            got.to_bits(),
            want.to_bits(),
            "{} on {s}: {got} vs {want}",
            model.name()
        );
    }
}

#[test]
fn cone_plan_matches_reference() {
    let g = graph();
    let model = ConeModel::new(&g, HalkConfig::tiny());
    let dim = model.cfg.dim;
    check_branches(&model, &g, |tape: &mut Tape, rep| {
        let a = tape.value(rep.axis);
        let p = tape.value(rep.ap);
        (0..dim)
            .map(|j| (a.data[j].to_bits(), p.data[j].clamp(0.0, PI).to_bits()))
            .collect::<Vec<_>>()
    });
}

#[test]
fn newlook_plan_matches_reference() {
    let g = graph();
    let model = NewLookModel::new(&g, HalkConfig::tiny());
    let dim = model.cfg.dim;
    check_branches(&model, &g, |tape: &mut Tape, rep| {
        let c = tape.value(rep.center);
        let o = tape.value(rep.offset);
        (0..dim)
            .map(|j| (c.data[j].to_bits(), o.data[j].max(0.0).to_bits()))
            .collect::<Vec<_>>()
    });
}

#[test]
fn mlpmix_plan_matches_reference() {
    let g = graph();
    let model = MlpMixModel::new(&g, HalkConfig::tiny());
    check_branches(&model, &g, |tape: &mut Tape, rep| {
        tape.value(rep.v)
            .data
            .iter()
            .map(|v| v.to_bits())
            .collect::<Vec<_>>()
    });
}

#[test]
fn baseline_train_losses_match_reference() {
    let g = graph();
    let gamma = HalkConfig::tiny().gamma;
    check_train_loss(&mut ConeModel::new(&g, HalkConfig::tiny()), &g, gamma);
    check_train_loss(&mut NewLookModel::new(&g, HalkConfig::tiny()), &g, gamma);
    check_train_loss(&mut MlpMixModel::new(&g, HalkConfig::tiny()), &g, gamma);
}
