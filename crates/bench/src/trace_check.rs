//! Validation of `halk-obs` artifacts: JSONL traces and run manifests.
//!
//! Used by `scripts/ci.sh` (via the `trace_check` binary) to assert that an
//! instrumented smoke run produced structurally sound observability output:
//!
//! - every trace line is one valid JSON object carrying `ev`, `name`,
//!   `ts_us` and `tid`;
//! - per-thread timestamps are monotonic (file order across threads is
//!   explicitly *not* chronological — buffers flush independently);
//! - open/close events balance LIFO per thread, and every close carries
//!   `dur_us`;
//! - optionally, for a named parent span, the durations of its direct
//!   child spans cover at least a given fraction of the parent's duration
//!   (the "phase timings sum to wall time" acceptance check);
//! - manifests carry every key of the DESIGN.md §11 schema.

use serde_json::Value;
use std::collections::HashMap;

/// Summary of a structurally valid trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceReport {
    /// Total events (lines).
    pub events: usize,
    /// Closed spans.
    pub spans: usize,
    /// Distinct thread ordinals seen.
    pub threads: usize,
}

fn field_i64(v: &Value, key: &str, line: usize) -> Result<i64, String> {
    v.get(key)
        .and_then(Value::as_i64)
        .ok_or_else(|| format!("line {line}: missing numeric field {key:?}"))
}

fn field_str<'a>(v: &'a Value, key: &str, line: usize) -> Result<&'a str, String> {
    v.get(key)
        .and_then(Value::as_str)
        .ok_or_else(|| format!("line {line}: missing string field {key:?}"))
}

/// Checks the structural trace invariants over a whole JSONL document.
pub fn check_trace(text: &str) -> Result<TraceReport, String> {
    let mut last_ts: HashMap<i64, i64> = HashMap::new();
    let mut stacks: HashMap<i64, Vec<String>> = HashMap::new();
    let mut events = 0usize;
    let mut spans = 0usize;
    for (i, line) in text.lines().enumerate() {
        let n = i + 1;
        let v: Value =
            serde_json::from_str(line).map_err(|e| format!("line {n}: invalid JSON ({e:?})"))?;
        events += 1;
        let ev = field_str(&v, "ev", n)?;
        let name = field_str(&v, "name", n)?.to_string();
        let tid = field_i64(&v, "tid", n)?;
        let ts = field_i64(&v, "ts_us", n)?;
        let prev = last_ts.insert(tid, ts).unwrap_or(i64::MIN);
        if ts < prev {
            return Err(format!(
                "line {n}: thread {tid} timestamps regressed ({prev} -> {ts})"
            ));
        }
        match ev {
            "o" => stacks.entry(tid).or_default().push(name),
            "c" => {
                field_i64(&v, "dur_us", n)?;
                match stacks.entry(tid).or_default().pop() {
                    Some(open) if open == name => spans += 1,
                    Some(open) => {
                        return Err(format!(
                            "line {n}: thread {tid} closes {name:?} but {open:?} is open"
                        ))
                    }
                    None => {
                        return Err(format!(
                            "line {n}: thread {tid} closes {name:?} with no open"
                        ))
                    }
                }
            }
            "i" => {}
            other => return Err(format!("line {n}: unknown event kind {other:?}")),
        }
    }
    for (tid, stack) in &stacks {
        if !stack.is_empty() {
            return Err(format!("thread {tid} left spans open: {stack:?}"));
        }
    }
    Ok(TraceReport {
        events,
        spans,
        threads: last_ts.len(),
    })
}

/// Spans shorter than this are exempt from the coverage check — at
/// microsecond resolution, fixed bookkeeping dominates tiny parents.
const COVERAGE_MIN_DUR_US: i64 = 1_000;

/// Checks that, for every span named `parent` longer than
/// [`COVERAGE_MIN_DUR_US`], the summed durations of its direct child spans
/// cover at least `min_fraction` of its duration. Call only on a trace
/// that already passed [`check_trace`]. Returns the number of parents
/// checked.
pub fn check_coverage(text: &str, parent: &str, min_fraction: f64) -> Result<usize, String> {
    // Per-thread stack of (name, sum of direct-child durations so far).
    let mut stacks: HashMap<i64, Vec<(String, i64)>> = HashMap::new();
    let mut checked = 0usize;
    for (i, line) in text.lines().enumerate() {
        let n = i + 1;
        let v: Value =
            serde_json::from_str(line).map_err(|e| format!("line {n}: invalid JSON ({e:?})"))?;
        let ev = field_str(&v, "ev", n)?;
        let tid = field_i64(&v, "tid", n)?;
        match ev {
            "o" => stacks
                .entry(tid)
                .or_default()
                .push((field_str(&v, "name", n)?.to_string(), 0)),
            "c" => {
                let dur = field_i64(&v, "dur_us", n)?;
                let stack = stacks.entry(tid).or_default();
                let (name, child_sum) = stack
                    .pop()
                    .ok_or_else(|| format!("line {n}: close without open"))?;
                if name == parent && dur >= COVERAGE_MIN_DUR_US {
                    checked += 1;
                    let frac = child_sum as f64 / dur as f64;
                    if frac < min_fraction {
                        return Err(format!(
                            "line {n}: span {parent:?} on thread {tid} has child coverage \
                             {:.1}% (< {:.1}%): {child_sum}us of {dur}us accounted",
                            frac * 100.0,
                            min_fraction * 100.0
                        ));
                    }
                }
                if let Some(top) = stack.last_mut() {
                    top.1 += dur;
                }
            }
            _ => {}
        }
    }
    Ok(checked)
}

/// Summary of a request-id continuity check ([`check_reqids`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReqIdReport {
    /// Distinct request ids minted at session accept (`req_accept`).
    pub accepted: usize,
    /// Events (other than the accept itself) that referenced a req id.
    pub referencing_events: usize,
    /// `slow_query` instants validated end-to-end.
    pub slow_queries: usize,
}

/// Extracts the ids of a `req=1,5,9` token from a span's detail string.
/// Absent token (or `detail` itself) yields an empty list — events
/// without request identity are simply not part of the continuity check.
fn req_ids_of(detail: &str) -> Result<Vec<u64>, String> {
    let Some(tok) = detail
        .split_ascii_whitespace()
        .find_map(|t| t.strip_prefix("req="))
    else {
        return Ok(Vec::new());
    };
    tok.split(',')
        .map(|s| {
            s.parse::<u64>()
                .map_err(|_| format!("malformed req id {s:?} in detail {detail:?}"))
        })
        .collect()
}

/// Checks request-id continuity across a daemon trace: every request id
/// referenced anywhere (executor groups, shard sweeps, queue events,
/// slow-query lines) must have been minted by a `req_accept` instant, and
/// every `slow_query` line must resolve to a *complete* chain — accepted,
/// enqueued, and executed in an `exec_group` span. Call only on a trace
/// that already passed [`check_trace`].
pub fn check_reqids(text: &str) -> Result<ReqIdReport, String> {
    use std::collections::HashSet;
    let mut accepted: HashSet<u64> = HashSet::new();
    let mut enqueued: HashSet<u64> = HashSet::new();
    let mut executed: HashSet<u64> = HashSet::new();
    let mut slow: Vec<(usize, u64)> = Vec::new();
    let mut referencing_events = 0usize;

    // Pass 1: collect what happened to each id, keyed by event name.
    let mut parsed: Vec<(usize, String, Vec<u64>)> = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let n = i + 1;
        let v: Value =
            serde_json::from_str(line).map_err(|e| format!("line {n}: invalid JSON ({e:?})"))?;
        let name = field_str(&v, "name", n)?.to_string();
        let Some(detail) = v.get("detail").and_then(Value::as_str) else {
            continue;
        };
        let ids = req_ids_of(detail).map_err(|e| format!("line {n}: {e}"))?;
        if ids.is_empty() {
            continue;
        }
        match name.as_str() {
            "req_accept" => accepted.extend(&ids),
            "req_enqueue" => enqueued.extend(&ids),
            "exec_group" => executed.extend(&ids),
            "slow_query" => slow.extend(ids.iter().map(|&id| (n, id))),
            _ => {}
        }
        parsed.push((n, name, ids));
    }

    // Pass 2: every referenced id traces back to an accept.
    for (n, name, ids) in &parsed {
        if name == "req_accept" {
            continue;
        }
        referencing_events += 1;
        for id in ids {
            if !accepted.contains(id) {
                return Err(format!(
                    "line {n}: {name} references req {id} with no matching req_accept"
                ));
            }
        }
    }
    // Slow-query lines additionally need the full session → queue →
    // executor chain: a slow report about a request nobody queued or
    // executed would mean the id plumbing is broken somewhere.
    for (n, id) in &slow {
        if !enqueued.contains(id) {
            return Err(format!(
                "line {n}: slow_query req {id} was never enqueued (no req_enqueue)"
            ));
        }
        if !executed.contains(id) {
            return Err(format!(
                "line {n}: slow_query req {id} appears in no exec_group span"
            ));
        }
    }
    Ok(ReqIdReport {
        accepted: accepted.len(),
        referencing_events,
        slow_queries: slow.len(),
    })
}

/// Converts a `halk-obs` JSONL trace into Chrome `about:tracing` /
/// Perfetto JSON. Spans become `B`/`E` duration events and instants become
/// `i` events; thread ordinals carry over as tracks under one process.
/// Call only on a trace that already passed [`check_trace`].
pub fn to_chrome(text: &str) -> Result<String, String> {
    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    let mut first = true;
    for (i, line) in text.lines().enumerate() {
        let n = i + 1;
        let v: Value =
            serde_json::from_str(line).map_err(|e| format!("line {n}: invalid JSON ({e:?})"))?;
        let ev = field_str(&v, "ev", n)?;
        let name = field_str(&v, "name", n)?;
        let tid = field_i64(&v, "tid", n)?;
        let ts = field_i64(&v, "ts_us", n)?;
        let ph = match ev {
            "o" => "B",
            "c" => "E",
            "i" => "i",
            other => return Err(format!("line {n}: unknown event kind {other:?}")),
        };
        if !first {
            out.push(',');
        }
        first = false;
        out.push_str(&format!(
            "{{\"ph\":\"{ph}\",\"name\":{},\"pid\":1,\"tid\":{tid},\"ts\":{ts}",
            serde_json::to_string(name).map_err(|e| format!("line {n}: {e:?}"))?,
        ));
        if ph == "i" {
            // Thread-scoped instant marker.
            out.push_str(",\"s\":\"t\"");
        }
        if let Some(detail) = v.get("detail").and_then(Value::as_str) {
            out.push_str(&format!(
                ",\"args\":{{\"detail\":{}}}",
                serde_json::to_string(detail).map_err(|e| format!("line {n}: {e:?}"))?,
            ));
        }
        out.push('}');
    }
    out.push_str("]}");
    Ok(out)
}

/// Keys every manifest must carry (DESIGN.md §11).
const MANIFEST_KEYS: [&str; 8] = [
    "run",
    "started_unix",
    "wall_s",
    "fields",
    "config",
    "phases",
    "metrics",
    "observability",
];

/// Checks a run manifest parses and carries the full §11 schema.
pub fn check_manifest(text: &str) -> Result<(), String> {
    let v: Value = serde_json::from_str(text).map_err(|e| format!("invalid JSON ({e:?})"))?;
    for key in MANIFEST_KEYS {
        if v.get(key).is_none() {
            return Err(format!("manifest is missing key {key:?}"));
        }
    }
    if v["run"].as_str().is_none_or(str::is_empty) {
        return Err("manifest \"run\" must be a non-empty string".to_string());
    }
    for key in ["counters", "gauges", "histograms"] {
        if v["observability"].get(key).is_none() {
            return Err(format!("manifest \"observability\" is missing {key:?}"));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = concat!(
        r#"{"ev":"o","name":"outer","ts_us":10,"tid":0}"#,
        "\n",
        r#"{"ev":"o","name":"inner","ts_us":12,"tid":0,"detail":"2p"}"#,
        "\n",
        r#"{"ev":"i","name":"tick","ts_us":13,"tid":1}"#,
        "\n",
        r#"{"ev":"c","name":"inner","ts_us":20,"tid":0,"dur_us":8}"#,
        "\n",
        r#"{"ev":"c","name":"outer","ts_us":25,"tid":0,"dur_us":15}"#,
        "\n",
    );

    #[test]
    fn valid_trace_passes() {
        let r = check_trace(GOOD).unwrap();
        assert_eq!(
            r,
            TraceReport {
                events: 5,
                spans: 2,
                threads: 2
            }
        );
    }

    #[test]
    fn non_lifo_close_fails() {
        let bad = concat!(
            r#"{"ev":"o","name":"a","ts_us":1,"tid":0}"#,
            "\n",
            r#"{"ev":"o","name":"b","ts_us":2,"tid":0}"#,
            "\n",
            r#"{"ev":"c","name":"a","ts_us":3,"tid":0,"dur_us":2}"#,
            "\n",
        );
        assert!(check_trace(bad).unwrap_err().contains("closes"));
    }

    #[test]
    fn timestamp_regression_fails() {
        let bad = concat!(
            r#"{"ev":"i","name":"a","ts_us":5,"tid":0}"#,
            "\n",
            r#"{"ev":"i","name":"b","ts_us":4,"tid":0}"#,
            "\n",
        );
        assert!(check_trace(bad).unwrap_err().contains("regressed"));
    }

    #[test]
    fn unclosed_span_fails() {
        let bad = r#"{"ev":"o","name":"a","ts_us":1,"tid":0}"#;
        assert!(check_trace(bad).unwrap_err().contains("open"));
    }

    #[test]
    fn invalid_json_line_fails() {
        assert!(check_trace("{not json}\n").is_err());
    }

    #[test]
    fn coverage_passes_and_fails_by_threshold() {
        // parent 2000us with one child of 1900us: 95% coverage.
        let t = concat!(
            r#"{"ev":"o","name":"p","ts_us":0,"tid":0}"#,
            "\n",
            r#"{"ev":"o","name":"k","ts_us":50,"tid":0}"#,
            "\n",
            r#"{"ev":"c","name":"k","ts_us":1950,"tid":0,"dur_us":1900}"#,
            "\n",
            r#"{"ev":"c","name":"p","ts_us":2000,"tid":0,"dur_us":2000}"#,
            "\n",
        );
        assert_eq!(check_coverage(t, "p", 0.9).unwrap(), 1);
        assert!(check_coverage(t, "p", 0.99).is_err());
        // Unknown parent name: nothing checked, trivially ok.
        assert_eq!(check_coverage(t, "absent", 0.9).unwrap(), 0);
    }

    #[test]
    fn short_parents_are_exempt_from_coverage() {
        let t = concat!(
            r#"{"ev":"o","name":"p","ts_us":0,"tid":0}"#,
            "\n",
            r#"{"ev":"c","name":"p","ts_us":10,"tid":0,"dur_us":10}"#,
            "\n",
        );
        assert_eq!(check_coverage(t, "p", 0.95).unwrap(), 0);
    }

    // A daemon-shaped trace: two accepted requests, both enqueued, both
    // executed in one batched exec_group, one flagged slow.
    const DAEMON: &str = concat!(
        r#"{"ev":"i","name":"req_accept","ts_us":1,"tid":0,"detail":"req=1 top=5 deadline_ms=0"}"#,
        "\n",
        r#"{"ev":"i","name":"req_enqueue","ts_us":2,"tid":0,"detail":"req=1 depth=1"}"#,
        "\n",
        r#"{"ev":"i","name":"req_accept","ts_us":3,"tid":1,"detail":"req=2 top=5 deadline_ms=0"}"#,
        "\n",
        r#"{"ev":"i","name":"req_enqueue","ts_us":4,"tid":1,"detail":"req=2 depth=2"}"#,
        "\n",
        r#"{"ev":"o","name":"exec_group","ts_us":5,"tid":2,"detail":"req=1,2 lane=halk batch=2"}"#,
        "\n",
        r#"{"ev":"o","name":"shard_sweep","ts_us":6,"tid":3,"detail":"shard=0 req=1,2"}"#,
        "\n",
        r#"{"ev":"c","name":"shard_sweep","ts_us":8,"tid":3,"dur_us":2}"#,
        "\n",
        r#"{"ev":"c","name":"exec_group","ts_us":9,"tid":2,"dur_us":4}"#,
        "\n",
        r#"{"ev":"i","name":"slow_query","ts_us":10,"tid":2,"detail":"req=2 lane=halk skeleton=s1b1@0 batch=2 wall_us=4000 queue_wait_us=2 embed_us=1 score_us=2 merge_us=1"}"#,
        "\n",
    );

    #[test]
    fn reqid_chain_validates_end_to_end() {
        check_trace(DAEMON).unwrap();
        let r = check_reqids(DAEMON).unwrap();
        assert_eq!(r.accepted, 2);
        assert_eq!(r.slow_queries, 1);
        assert!(r.referencing_events >= 4);
    }

    #[test]
    fn unaccepted_reqid_fails() {
        let bad = concat!(
            r#"{"ev":"o","name":"exec_group","ts_us":1,"tid":0,"detail":"req=7 lane=exact batch=1"}"#,
            "\n",
            r#"{"ev":"c","name":"exec_group","ts_us":2,"tid":0,"dur_us":1}"#,
            "\n",
        );
        assert!(check_reqids(bad).unwrap_err().contains("req_accept"));
    }

    #[test]
    fn slow_query_without_exec_span_fails() {
        let bad = concat!(
            r#"{"ev":"i","name":"req_accept","ts_us":1,"tid":0,"detail":"req=3 top=1 deadline_ms=0"}"#,
            "\n",
            r#"{"ev":"i","name":"req_enqueue","ts_us":2,"tid":0,"detail":"req=3 depth=1"}"#,
            "\n",
            r#"{"ev":"i","name":"slow_query","ts_us":3,"tid":0,"detail":"req=3 lane=halk skeleton=none batch=1 wall_us=9 queue_wait_us=1 embed_us=1 score_us=1 merge_us=1"}"#,
            "\n",
        );
        assert!(check_reqids(bad).unwrap_err().contains("exec_group"));
    }

    #[test]
    fn traces_without_reqids_pass_vacuously() {
        // A CLI one-shot trace (req=0 suppressed) has nothing to check.
        let r = check_reqids(GOOD).unwrap();
        assert_eq!(r.accepted, 0);
        assert_eq!(r.referencing_events, 0);
    }

    #[test]
    fn chrome_export_round_trips_shape() {
        let chrome = to_chrome(DAEMON).unwrap();
        let v: Value = serde_json::from_str(&chrome).unwrap();
        let events = v["traceEvents"].as_array().unwrap();
        assert_eq!(events.len(), DAEMON.lines().count());
        assert_eq!(events[0]["ph"].as_str(), Some("i"));
        assert_eq!(events[0]["s"].as_str(), Some("t"));
        assert_eq!(events[4]["ph"].as_str(), Some("B"));
        assert_eq!(
            events[4]["args"]["detail"].as_str(),
            Some("req=1,2 lane=halk batch=2")
        );
        assert_eq!(events[7]["ph"].as_str(), Some("E"));
        assert!(to_chrome("{bad json}").is_err());
    }

    #[test]
    fn manifest_schema_is_enforced() {
        let good = halk_obs::Manifest::new("tc_test").to_json();
        check_manifest(&good).unwrap();
        assert!(check_manifest("{}").unwrap_err().contains("missing key"));
        assert!(check_manifest("not json").is_err());
    }
}
