//! Table rendering and JSON persistence for the experiment binaries.
//!
//! Each binary prints the paper's row/column layout to stdout and writes the
//! same numbers as JSON under `results/` so EXPERIMENTS.md entries are
//! regenerable and diffable.

use halk_core::eval::EvalCell;
use halk_logic::Structure;
use serde_json::{json, Value};
use std::fmt::Write as _;
use std::path::PathBuf;

/// A simple fixed-layout table (rows of optional numeric cells; `None`
/// renders as the paper's "-" for unsupported operators).
#[derive(Debug, Clone)]
pub struct Table {
    title: String,
    columns: Vec<String>,
    rows: Vec<(String, Vec<Option<f64>>)>,
    /// Numbers are multiplied by this factor before printing (the paper's
    /// tables report percentages).
    display_factor: f64,
    /// Decimal places.
    precision: usize,
}

impl Table {
    /// Creates a table with the given title and column labels.
    pub fn new(title: impl Into<String>, columns: &[&str]) -> Self {
        Self {
            title: title.into(),
            columns: columns.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            display_factor: 1.0,
            precision: 1,
        }
    }

    /// Prints values as percentages (×100).
    pub fn percentages(mut self) -> Self {
        self.display_factor = 100.0;
        self
    }

    /// Sets decimal places.
    pub fn precision(mut self, p: usize) -> Self {
        self.precision = p;
        self
    }

    /// Appends one labeled row; cell count must match the column count.
    pub fn push_row(&mut self, label: impl Into<String>, cells: Vec<Option<f64>>) {
        assert_eq!(cells.len(), self.columns.len(), "row width mismatch");
        self.rows.push((label.into(), cells));
    }

    /// Renders the table as text.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let label_w = self
            .rows
            .iter()
            .map(|(l, _)| l.len())
            .chain(std::iter::once(8))
            .max()
            .unwrap_or(8);
        let cell_w = self
            .columns
            .iter()
            .map(|c| c.len().max(6))
            .collect::<Vec<_>>();
        let _ = writeln!(out, "== {} ==", self.title);
        let _ = write!(out, "{:label_w$}", "");
        for (c, w) in self.columns.iter().zip(&cell_w) {
            let _ = write!(out, "  {c:>w$}");
        }
        let _ = writeln!(out);
        for (label, cells) in &self.rows {
            let _ = write!(out, "{label:label_w$}");
            for (cell, w) in cells.iter().zip(&cell_w) {
                match cell {
                    Some(v) => {
                        let _ = write!(
                            out,
                            "  {:>w$.prec$}",
                            v * self.display_factor,
                            w = w,
                            prec = self.precision
                        );
                    }
                    None => {
                        let _ = write!(out, "  {:>w$}", "-");
                    }
                }
            }
            let _ = writeln!(out);
        }
        out
    }

    /// Prints to stdout.
    pub fn print(&self) {
        println!("{}", self.render());
    }

    /// The table as a JSON value.
    pub fn to_json(&self) -> Value {
        json!({
            "title": self.title,
            "columns": self.columns,
            "rows": self.rows.iter().map(|(label, cells)| {
                json!({ "label": label, "cells": cells })
            }).collect::<Vec<_>>(),
        })
    }
}

/// Names of the structures in an `evaluate_table` row whose attempt budget
/// ran out before the requested number of answerable queries was found
/// ([`EvalCell::truncated`]) — surfaced in each binary's JSON so downstream
/// readers know which cells averaged fewer queries than configured.
pub fn truncated_structures(row: &[(Structure, Option<EvalCell>)]) -> Vec<String> {
    row.iter()
        .filter(|(_, c)| c.is_some_and(|c| c.truncated))
        .map(|(s, _)| s.name().to_string())
        .collect()
}

/// Writes a JSON value to `results/<name>.json` (creating the directory),
/// returning the path. Failures are reported but non-fatal — the printed
/// table is the primary artifact.
pub fn save_json(name: &str, value: &Value) -> Option<PathBuf> {
    let dir = PathBuf::from("results");
    if let Err(e) = std::fs::create_dir_all(&dir) {
        halk_obs::log!(Warn, "cannot create {}: {e}", dir.display());
        return None;
    }
    let path = dir.join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(s) => {
            if let Err(e) = std::fs::write(&path, s) {
                halk_obs::log!(Warn, "cannot write {}: {e}", path.display());
                return None;
            }
            Some(path)
        }
        Err(e) => {
            halk_obs::log!(Warn, "cannot serialize {name}: {e}");
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_includes_title_columns_and_dashes() {
        let mut t = Table::new("MRR results", &["1p", "2p"]).percentages();
        t.push_row("ConE", vec![Some(0.421), None]);
        t.push_row("HaLk", vec![Some(0.97), Some(0.639)]);
        let s = t.render();
        assert!(s.contains("MRR results"));
        assert!(s.contains("1p") && s.contains("2p"));
        assert!(s.contains("42.1"));
        assert!(s.contains('-'));
        assert!(s.contains("97.0"));
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn row_width_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.push_row("r", vec![Some(1.0)]);
    }

    #[test]
    fn json_roundtrip_shape() {
        let mut t = Table::new("x", &["a"]);
        t.push_row("r", vec![Some(0.5)]);
        let j = t.to_json();
        assert_eq!(j["title"], "x");
        assert_eq!(j["rows"][0]["label"], "r");
        assert_eq!(j["rows"][0]["cells"][0], 0.5);
    }

    #[test]
    fn precision_control() {
        let mut t = Table::new("x", &["a"]).precision(3);
        t.push_row("r", vec![Some(0.12345)]);
        assert!(t.render().contains("0.123"));
    }
}
