//! Experiment scale presets.
//!
//! The paper trains with `d = 800` on four GPUs; this reproduction runs on
//! one CPU, so every experiment accepts a scale knob trading wall-clock for
//! metric headroom. The *relative* comparisons (who wins, by roughly what
//! factor) are stable from `quick` upward; `smoke` exists so the binaries
//! can run in CI/tests in seconds.

use halk_core::{HalkConfig, TrainConfig};

/// A named experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Preset {
    /// Seconds; sanity only.
    Smoke,
    /// A few minutes; shapes emerge.
    Quick,
    /// Tens of minutes; the EXPERIMENTS.md reference runs.
    Standard,
    /// As long as you can afford.
    Full,
}

/// Resolved experiment scale: model/config knobs all derived from a preset.
#[derive(Debug, Clone)]
pub struct Scale {
    /// The preset this scale came from.
    pub preset: Preset,
    /// Embedding dimensionality.
    pub dim: usize,
    /// Optimizer steps per (model, dataset) training run.
    pub steps: usize,
    /// Evaluation queries per (structure, dataset) cell.
    pub eval_queries: usize,
    /// Base RNG seed.
    pub seed: u64,
}

impl Scale {
    /// Builds a scale from a preset name.
    pub fn from_preset(p: Preset) -> Self {
        let (dim, steps, eval_queries) = match p {
            Preset::Smoke => (8, 120, 5),
            Preset::Quick => (32, 3000, 25),
            Preset::Standard => (32, 10000, 50),
            Preset::Full => (64, 40000, 100),
        };
        Self {
            preset: p,
            dim,
            steps,
            eval_queries,
            seed: 40,
        }
    }

    /// Reads `HALK_SCALE` / `HALK_STEPS` / `HALK_SEED` from the environment,
    /// defaulting to `quick`.
    pub fn from_env() -> Self {
        let preset = match std::env::var("HALK_SCALE").as_deref() {
            Ok("smoke") => Preset::Smoke,
            Ok("standard") => Preset::Standard,
            Ok("full") => Preset::Full,
            _ => Preset::Quick,
        };
        let mut s = Self::from_preset(preset);
        if let Ok(steps) = std::env::var("HALK_STEPS") {
            if let Ok(v) = steps.parse() {
                s.steps = v;
            }
        }
        if let Ok(seed) = std::env::var("HALK_SEED") {
            if let Ok(v) = seed.parse() {
                s.seed = v;
            }
        }
        s
    }

    /// Model hyper-parameters at this scale.
    pub fn model_config(&self) -> HalkConfig {
        HalkConfig {
            dim: self.dim,
            hidden: 2 * self.dim,
            steps: self.steps,
            seed: self.seed,
            ..HalkConfig::default()
        }
    }

    /// Training-loop knobs at this scale.
    pub fn train_config(&self) -> TrainConfig {
        TrainConfig {
            steps: self.steps,
            batch_size: 64,
            negatives: 16,
            queries_per_structure: 600,
            p1_weight: 3,
            seed: self.seed ^ 0x7EA1,
            log_every: 0,
            ..TrainConfig::default()
        }
    }

    /// Preset name for report labels.
    pub fn name(&self) -> &'static str {
        match self.preset {
            Preset::Smoke => "smoke",
            Preset::Quick => "quick",
            Preset::Standard => "standard",
            Preset::Full => "full",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_are_ordered_by_budget() {
        let smoke = Scale::from_preset(Preset::Smoke);
        let quick = Scale::from_preset(Preset::Quick);
        let std = Scale::from_preset(Preset::Standard);
        let full = Scale::from_preset(Preset::Full);
        assert!(smoke.steps < quick.steps);
        assert!(quick.steps < std.steps);
        assert!(std.steps < full.steps);
        assert!(smoke.dim <= quick.dim && std.dim <= full.dim);
    }

    #[test]
    fn configs_inherit_scale() {
        let s = Scale::from_preset(Preset::Quick);
        assert_eq!(s.model_config().dim, s.dim);
        assert_eq!(s.train_config().steps, s.steps);
        assert_eq!(s.name(), "quick");
    }
}
