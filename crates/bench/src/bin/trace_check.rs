//! Validates `halk-obs` artifacts from an instrumented run.
//!
//! Usage:
//!
//! ```text
//! trace_check [TRACE.jsonl ...] [--manifest FILE.json ...] \
//!             [--coverage SPAN:FRACTION ...] [--reqids] [--chrome OUT.json]
//! ```
//!
//! Each positional argument is a JSONL trace checked with
//! [`halk_bench::trace_check::check_trace`]; each `--coverage name:frac`
//! additionally asserts that spans named `name` have direct-child spans
//! covering at least `frac` (0..1) of their duration in every given trace.
//! `--reqids` asserts request-id continuity (every referenced id was
//! minted by a `req_accept`; every `slow_query` resolves to a complete
//! session → queue → executor chain). `--chrome OUT.json` converts each
//! trace to Chrome `about:tracing` JSON (for a single trace, written to
//! OUT.json; with several, OUT.json gets a numeric suffix per trace).
//! Each `--manifest` file is checked against the DESIGN.md §11 schema.
//! Exits nonzero on the first failure. Used by `scripts/ci.sh` to gate the
//! observability smoke run.

use halk_bench::trace_check::{
    check_coverage, check_manifest, check_reqids, check_trace, to_chrome,
};
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut traces: Vec<String> = Vec::new();
    let mut manifests: Vec<String> = Vec::new();
    let mut coverages: Vec<(String, f64)> = Vec::new();
    let mut reqids = false;
    let mut chrome_out: Option<String> = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--manifest" => match it.next() {
                Some(p) => manifests.push(p),
                None => return usage("--manifest needs a path"),
            },
            "--coverage" => {
                let Some(spec) = it.next() else {
                    return usage("--coverage needs SPAN:FRACTION");
                };
                let Some((name, frac)) = spec.split_once(':') else {
                    return usage("--coverage spec must be SPAN:FRACTION");
                };
                match frac.parse::<f64>() {
                    Ok(f) if (0.0..=1.0).contains(&f) => coverages.push((name.to_string(), f)),
                    _ => return usage("coverage fraction must be in 0..=1"),
                }
            }
            "--reqids" => reqids = true,
            "--chrome" => match it.next() {
                Some(p) => chrome_out = Some(p),
                None => return usage("--chrome needs an output path"),
            },
            "--help" | "-h" => {
                println!("{USAGE}");
                return ExitCode::SUCCESS;
            }
            _ => traces.push(a),
        }
    }
    if traces.is_empty() && manifests.is_empty() {
        return usage("nothing to check");
    }

    let mut failed = false;
    for path in &traces {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("trace_check: {path}: cannot read: {e}");
                failed = true;
                continue;
            }
        };
        match check_trace(&text) {
            Ok(r) => println!(
                "trace_check: {path}: ok ({} events, {} spans, {} threads)",
                r.events, r.spans, r.threads
            ),
            Err(e) => {
                eprintln!("trace_check: {path}: INVALID: {e}");
                failed = true;
                continue;
            }
        }
        for (name, frac) in &coverages {
            match check_coverage(&text, name, *frac) {
                Ok(n) => println!(
                    "trace_check: {path}: coverage {name} >= {:.0}% ok ({n} spans checked)",
                    frac * 100.0
                ),
                Err(e) => {
                    eprintln!("trace_check: {path}: COVERAGE FAILURE for {name}: {e}");
                    failed = true;
                }
            }
        }
        if reqids {
            match check_reqids(&text) {
                Ok(r) => println!(
                    "trace_check: {path}: reqids ok ({} accepted, {} referencing events, \
                     {} slow queries resolved)",
                    r.accepted, r.referencing_events, r.slow_queries
                ),
                Err(e) => {
                    eprintln!("trace_check: {path}: REQID FAILURE: {e}");
                    failed = true;
                }
            }
        }
        if let Some(out) = &chrome_out {
            // One trace writes to OUT verbatim; several get -<index>.
            let dest = if traces.len() == 1 {
                out.clone()
            } else {
                let i = traces.iter().position(|t| t == path).unwrap_or(0);
                format!("{out}.{i}")
            };
            match to_chrome(&text).and_then(|j| std::fs::write(&dest, j).map_err(|e| e.to_string()))
            {
                Ok(()) => println!("trace_check: {path}: chrome trace written to {dest}"),
                Err(e) => {
                    eprintln!("trace_check: {path}: CHROME EXPORT FAILURE: {e}");
                    failed = true;
                }
            }
        }
    }
    for path in &manifests {
        match std::fs::read_to_string(path)
            .map_err(|e| e.to_string())
            .and_then(|t| check_manifest(&t))
        {
            Ok(()) => println!("trace_check: manifest {path}: ok"),
            Err(e) => {
                eprintln!("trace_check: manifest {path}: INVALID: {e}");
                failed = true;
            }
        }
    }
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

const USAGE: &str = "usage: trace_check [TRACE.jsonl ...] [--manifest FILE ...] \
     [--coverage SPAN:FRACTION ...] [--reqids] [--chrome OUT.json]";

fn usage(msg: &str) -> ExitCode {
    eprintln!("trace_check: {msg}");
    eprintln!("{USAGE}");
    ExitCode::FAILURE
}
