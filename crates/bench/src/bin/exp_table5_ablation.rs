//! Table V: ablation study on the NELL stand-in.
//!
//! * Difference rows (2d 3d dp): HaLk vs **HaLk-V1** (NewLook-style
//!   raw-value overlap, no cardinality constraint).
//! * Negation rows (2in 3in pin): HaLk vs **HaLk-V2** (linear negation).
//! * Projection rows (1p 2p 3p): HaLk vs **HaLk-V3** (independent
//!   center/length learning, NewLook-style).
//!
//! Run with `cargo run --release -p halk-bench --bin exp_table5_ablation`.

use halk_bench::{save_json, truncated_structures, RunObs, Scale, Table};
use halk_core::eval::evaluate_table;
use halk_core::{train_model, Ablation, HalkModel};
use halk_kg::Dataset;
use halk_logic::Structure;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde_json::json;

fn main() {
    let mut obs = RunObs::init("table5_ablation");
    let scale = Scale::from_env();
    obs.scale(&scale);
    eprintln!(
        "Table V (ablations, NELL) at scale '{}' ({} steps)",
        scale.name(),
        scale.steps
    );
    let nell = Dataset::standard_suite(&mut StdRng::seed_from_u64(scale.seed))
        .into_iter()
        .find(|d| d.name == "NELL")
        .expect("NELL in the standard suite");

    let groups: [(&str, Ablation, Vec<Structure>); 3] = [
        (
            "Difference",
            Ablation::V1,
            vec![Structure::D2, Structure::D3, Structure::Dp],
        ),
        (
            "Negation",
            Ablation::V2,
            vec![Structure::In2, Structure::In3, Structure::Pin],
        ),
        (
            "Projection",
            Ablation::V3,
            vec![Structure::P1, Structure::P2, Structure::P3],
        ),
    ];

    // Train the full model once; each variant once.
    let train = |ablation: Ablation| -> HalkModel {
        let cfg = scale.model_config().with_ablation(ablation);
        let mut m = HalkModel::new(&nell.split.train, cfg);
        let stats = train_model(
            &mut m,
            &nell.split.train,
            &Structure::training(),
            &scale.train_config(),
        )
        .expect("training failed");
        eprintln!(
            "  trained HaLk{:?} in {:.1?} (tail loss {:.3})",
            ablation,
            stats.wall,
            stats.tail_loss()
        );
        m
    };
    let full = train(Ablation::None);

    let mut json_out = Vec::new();
    for (label, ablation, structures) in groups {
        let variant = train(ablation);
        let cols: Vec<&str> = structures.iter().map(|s| s.name()).collect();
        let mut hit3 = Table::new(format!("Table V — {label} (Hit@3 %)"), &cols).percentages();
        let mut mrr = Table::new(format!("Table V — {label} (MRR %)"), &cols).percentages();
        let mut truncated_out = Vec::new();
        for (name, model) in [
            (format!("HaLk-{ablation:?}"), &variant),
            ("HaLk".to_string(), &full),
        ] {
            let row = evaluate_table(
                model,
                &nell.split,
                &structures,
                scale.eval_queries,
                scale.seed ^ 0x55,
            );
            hit3.push_row(
                name.clone(),
                row.iter()
                    .map(|(_, c)| c.map(|c| c.metrics.hits3))
                    .collect(),
            );
            mrr.push_row(
                name.clone(),
                row.iter().map(|(_, c)| c.map(|c| c.metrics.mrr)).collect(),
            );
            truncated_out.push(json!({
                "model": name,
                "structures": truncated_structures(&row),
            }));
        }
        hit3.print();
        mrr.print();
        json_out.push(json!({
            "group": label,
            "hit3": hit3.to_json(),
            "mrr": mrr.to_json(),
            "truncated": truncated_out,
        }));
    }
    if let Some(p) = save_json(
        "table5_ablation",
        &json!({ "scale": scale.name(), "results": json_out }),
    ) {
        eprintln!("results written to {}", p.display());
    }
    obs.finish();
}
