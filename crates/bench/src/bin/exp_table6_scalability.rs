//! Table VI: accuracy and execution time vs query size (1–5) for HaLk vs
//! GFinder on the NELL stand-in.
//!
//! Query-size ladder: 1p → 2p → pi → pip → p3ip (§IV-G). Accuracy is
//! recall@|truth| against exact test-graph answers; both engines observe
//! only the (incomplete) training graph, so the matcher's accuracy decays
//! with size while the embedding executor stays flat-ish and much faster.
//!
//! Run with `cargo run --release -p halk-bench --bin exp_table6_scalability`.

use halk_bench::{save_json, RunObs, Scale, Table};
use halk_core::{train_model, HalkModel};
use halk_kg::Dataset;
use halk_logic::{answers, Sampler, Structure};
use halk_matching::{answer_accuracy, Matcher};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde_json::json;
use std::time::Instant;

fn main() {
    let mut obs = RunObs::init("table6_scalability");
    let scale = Scale::from_env();
    obs.scale(&scale);
    let queries_per_size = scale.eval_queries.min(30);
    eprintln!(
        "Table VI (scalability, NELL) at scale '{}' ({} queries/size)",
        scale.name(),
        queries_per_size
    );
    let nell = Dataset::standard_suite(&mut StdRng::seed_from_u64(scale.seed))
        .into_iter()
        .find(|d| d.name == "NELL")
        .expect("NELL in the standard suite");

    let mut halk = HalkModel::new(&nell.split.train, scale.model_config());
    let stats = train_model(
        &mut halk,
        &nell.split.train,
        &Structure::training(),
        &scale.train_config(),
    )
    .expect("training failed");
    eprintln!("  trained HaLk in {:.1?}", stats.wall);

    let matcher = Matcher::new(&nell.split.train);
    let sampler = Sampler::new(&nell.split.test);
    let mut rng = StdRng::seed_from_u64(scale.seed ^ 0x76);

    let mut acc_table = Table::new(
        "Table VI — accuracy (%) by query size",
        &["QS1/1p", "QS2/2p", "QS3/pi", "QS4/pip", "QS5/p3ip"],
    )
    .percentages();
    let mut time_table = Table::new(
        "Table VI — execution time (ms) by query size",
        &["QS1/1p", "QS2/2p", "QS3/pi", "QS4/pip", "QS5/p3ip"],
    )
    .precision(2);

    let mut h_acc = Vec::new();
    let mut g_acc = Vec::new();
    let mut h_ms = Vec::new();
    let mut g_ms = Vec::new();
    let mut json_rows = Vec::new();
    for (size, s) in Structure::scalability_ladder() {
        let mut ha = 0.0;
        let mut ga = 0.0;
        let mut hm = 0.0f64;
        let mut gm = 0.0f64;
        let mut n = 0usize;
        for gq in sampler.sample_many(s, queries_per_size, &mut rng) {
            let truth = answers(&gq.query, &nell.split.test);
            if truth.is_empty() {
                continue;
            }
            let k = truth.len();

            let t0 = Instant::now();
            let scores = halk.score_all(&gq.query);
            hm += t0.elapsed().as_secs_f64() * 1e3;
            let mut idx: Vec<u32> = (0..scores.len() as u32).collect();
            idx.sort_by(|&a, &b| {
                scores[a as usize]
                    .partial_cmp(&scores[b as usize])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            let predicted: Vec<halk_kg::EntityId> =
                idx.into_iter().take(k).map(halk_kg::EntityId).collect();
            ha += answer_accuracy(&predicted, &truth);

            let t1 = Instant::now();
            let matched = matcher.answer_entities(&gq.query);
            gm += t1.elapsed().as_secs_f64() * 1e3;
            ga += answer_accuracy(&matched, &truth);
            n += 1;
        }
        let n = n.max(1) as f64;
        h_acc.push(Some(ha / n));
        g_acc.push(Some(ga / n));
        h_ms.push(Some(hm / n));
        g_ms.push(Some(gm / n));
        json_rows.push(json!({
            "size": size, "structure": s.name(),
            "halk_acc": ha / n, "gfinder_acc": ga / n,
            "halk_ms": hm / n, "gfinder_ms": gm / n,
        }));
    }
    acc_table.push_row("HaLk", h_acc);
    acc_table.push_row("GFinder", g_acc);
    time_table.push_row("HaLk", h_ms);
    time_table.push_row("GFinder", g_ms);
    acc_table.print();
    time_table.print();
    if let Some(p) = save_json(
        "table6_scalability",
        &json!({ "scale": scale.name(), "rows": json_rows }),
    ) {
        eprintln!("results written to {}", p.display());
    }
    obs.finish();
}
