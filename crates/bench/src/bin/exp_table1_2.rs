//! Tables I and II: MRR and Hit@3 for the 12 non-negation query structures
//! on the three benchmark datasets, for ConE / NewLook / MLPMix / HaLk.
//!
//! Run with `cargo run --release -p halk-bench --bin exp_table1_2`;
//! scale via `HALK_SCALE=smoke|quick|standard|full`.

use halk_bench::suite::{standard_datasets, train_suite, ModelKind};
use halk_bench::{save_json, truncated_structures, RunObs, Scale, Table};
use halk_core::eval::{evaluate_table, row_average};
use halk_logic::Structure;
use serde_json::json;

fn main() {
    let mut obs = RunObs::init("table1_2");
    let scale = Scale::from_env();
    obs.scale(&scale);
    eprintln!(
        "Tables I-II at scale '{}' (dim {}, {} steps, {} eval queries/cell)",
        scale.name(),
        scale.dim,
        scale.steps,
        scale.eval_queries
    );
    let structures = Structure::table12();
    let mut columns: Vec<&str> = structures.iter().map(|s| s.name()).collect();
    columns.push("AVG");

    let mut json_out = Vec::new();
    for dataset in standard_datasets(&scale) {
        eprintln!("dataset {}:", dataset.name);
        let suite = obs.phase(&format!("train_{}", dataset.name), || {
            train_suite(&dataset.split, &scale, &ModelKind::all())
        });

        let mut mrr_table =
            Table::new(format!("Table I (MRR %) — {}", dataset.name), &columns).percentages();
        let mut hit3_table =
            Table::new(format!("Table II (Hit@3 %) — {}", dataset.name), &columns).percentages();

        let mut truncated_out = Vec::new();
        for trained in &suite {
            let row = obs.phase(&format!("eval_{}", dataset.name), || {
                evaluate_table(
                    trained.model.as_ref(),
                    &dataset.split,
                    &structures,
                    scale.eval_queries,
                    scale.seed ^ 0x12,
                )
            });
            let mut mrr_cells: Vec<Option<f64>> =
                row.iter().map(|(_, c)| c.map(|c| c.metrics.mrr)).collect();
            let mut hit3_cells: Vec<Option<f64>> = row
                .iter()
                .map(|(_, c)| c.map(|c| c.metrics.hits3))
                .collect();
            let mrr_avg = row_average(&row, |m| m.mrr);
            if trained.name() == "HaLk" {
                obs.metric(&format!("mrr_avg_{}", dataset.name), mrr_avg);
            }
            mrr_cells.push(Some(mrr_avg));
            hit3_cells.push(Some(row_average(&row, |m| m.hits3)));
            mrr_table.push_row(trained.name(), mrr_cells);
            hit3_table.push_row(trained.name(), hit3_cells);
            truncated_out.push(json!({
                "model": trained.name(),
                "structures": truncated_structures(&row),
            }));
        }
        mrr_table.print();
        hit3_table.print();
        json_out.push(json!({
            "dataset": dataset.name,
            "mrr": mrr_table.to_json(),
            "hit3": hit3_table.to_json(),
            // Cells whose attempt budget ran out before `eval_queries`
            // answerable queries were found — read these MRRs with care.
            "truncated": truncated_out,
        }));
    }
    if let Some(p) = save_json(
        "table1_2",
        &json!({ "scale": scale.name(), "results": json_out }),
    ) {
        eprintln!("results written to {}", p.display());
    }
    obs.finish();
}
