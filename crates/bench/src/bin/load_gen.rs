//! Load generator + correctness checker for the `halk serve` daemon.
//!
//! Usage:
//!
//! ```text
//! load_gen --addr HOST:PORT --graph graph.tsv [--model DIR]
//!          [--duration-ms 3000] [--clients 4] [--seed 1] [--top 10]
//!          [--deadline-ms 2000] [--faults]
//! ```
//!
//! Replays mixed traffic over every paper structure expressible in the
//! SPARQL subset (all 24: projections, intersections, unions, differences
//! and the negation family), verifying each served answer **bit-for-bit**
//! against a locally computed reference — the exact engine's answer sets
//! and the embedding scorer's f32 scores must round-trip the wire
//! unchanged. With `--faults` it additionally runs an adversarial side
//! channel: mid-request disconnects, slowloris writers, malformed and
//! oversized frames, and connection bursts past the admission limit.
//!
//! Prints one JSON summary line (latency quantiles from a `halk-obs`
//! histogram, shed/error counts, and `"mismatches"` which must be 0) and
//! exits nonzero on any mismatch — `scripts/ci.sh` gates on both.

use halk_core::{top_k_indices, HalkModel};
use halk_kg::tsv;
use halk_logic::plan::{execute_set, PlanBindings, PlanShape};
use halk_logic::{Query, Sampler, Structure};
use halk_obs::metrics;
use halk_serve::{AskEngine, Client, ErrorKind, Response};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::io::Write;
use std::net::TcpStream;
use std::path::Path;
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

// ---------------------------------------------------------------------------
// Query → SPARQL rendering
// ---------------------------------------------------------------------------

/// Renders a computation tree into the SPARQL subset the Adaptor accepts.
///
/// The rendering follows the Adaptor's grammar backwards: projection
/// chains become triples through fresh intermediate variables, an
/// intersection's branches become conjunctive patterns on the same
/// variable, `Union` becomes `{…} UNION {…}`, a root `Difference` becomes
/// `MINUS` on the SELECT variable, and `Negation` (or a nested
/// `Difference`, which is the same set algebra) becomes
/// `FILTER NOT EXISTS`. Returns `None` for trees outside the subset
/// (e.g. a bare anchor).
fn query_to_sparql(q: &Query) -> Option<String> {
    let mut body = String::new();
    let mut next_var = 0usize;
    if let Query::Difference(parts) = q {
        // Only the SELECT variable supports MINUS; nested differences are
        // rendered as FILTER NOT EXISTS by `render` below.
        let (first, rest) = parts.split_first()?;
        render(first, "x", &mut body, &mut next_var)?;
        for part in rest {
            body.push_str("MINUS { ");
            render(part, "x", &mut body, &mut next_var)?;
            body.push_str("} ");
        }
    } else {
        render(q, "x", &mut body, &mut next_var)?;
    }
    Some(format!("SELECT ?x WHERE {{ {body}}}"))
}

/// Appends patterns binding `?var` to `out`. Fresh intermediate variables
/// come from `next_var`.
fn render(q: &Query, var: &str, out: &mut String, next_var: &mut usize) -> Option<()> {
    match q {
        Query::Anchor(_) => None, // a variable cannot be bound to a constant
        Query::Projection { rel, input } => {
            match input.as_ref() {
                Query::Anchor(e) => {
                    out.push_str(&format!("e:{} r:{} ?{var} . ", e.0, rel.0));
                }
                other => {
                    let v = format!("v{}", *next_var);
                    *next_var += 1;
                    render(other, &v, out, next_var)?;
                    out.push_str(&format!("?{v} r:{} ?{var} . ", rel.0));
                }
            }
            Some(())
        }
        Query::Intersection(children) => {
            for child in children {
                match child {
                    Query::Negation(inner) => {
                        out.push_str("FILTER NOT EXISTS { ");
                        render(inner, var, out, next_var)?;
                        out.push_str("} ");
                    }
                    other => render(other, var, out, next_var)?,
                }
            }
            Some(())
        }
        Query::Union(children) => {
            for (i, child) in children.iter().enumerate() {
                if i > 0 {
                    out.push_str("UNION ");
                }
                out.push_str("{ ");
                render(child, var, out, next_var)?;
                out.push_str("} ");
            }
            Some(())
        }
        Query::Negation(inner) => {
            out.push_str("FILTER NOT EXISTS { ");
            render(inner, var, out, next_var)?;
            out.push_str("} ");
            Some(())
        }
        Query::Difference(parts) => {
            // Nested difference: a \ b ≡ a ∩ ¬b over the entity universe.
            let (first, rest) = parts.split_first()?;
            render(first, var, out, next_var)?;
            for part in rest {
                out.push_str("FILTER NOT EXISTS { ");
                render(part, var, out, next_var)?;
                out.push_str("} ");
            }
            Some(())
        }
    }
}

// ---------------------------------------------------------------------------
// Work items with precomputed references
// ---------------------------------------------------------------------------

struct WorkItem {
    structure: &'static str,
    sparql: String,
    /// Exact answer ids in set order (full, not truncated).
    exact_ids: Vec<u32>,
    /// HaLk reference: (entity, score-bits) for the top-k rows, plus the
    /// total row count; `None` when no model was given.
    halk_top: Option<(Vec<(u32, u32)>, usize)>,
}

fn build_workload(
    graph: &halk_kg::Graph,
    model: Option<&HalkModel>,
    top: usize,
    per_structure: usize,
    seed: u64,
) -> Vec<WorkItem> {
    let sampler = Sampler::new(graph);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut items = Vec::new();
    for s in Structure::all() {
        let mut got = 0;
        for _ in 0..per_structure * 4 {
            if got == per_structure {
                break;
            }
            let Some(gq) = sampler.sample(s, &mut rng) else {
                continue;
            };
            let Some(sparql) = query_to_sparql(&gq.query) else {
                continue;
            };
            // The reference is computed from the rendered text, exactly as
            // the daemon will see it — any render/adapt disagreement with
            // the sampled tree shows up here, not as a served mismatch.
            let query = match halk_sparql::sparql_to_query(&sparql) {
                Ok(q) => q,
                Err(e) => {
                    eprintln!("load_gen: render bug for {}: {e}\n  {sparql}", s.name());
                    continue;
                }
            };
            let shape = PlanShape::compile(&query);
            let exact = execute_set(&shape, &PlanBindings::of(&query), graph);
            let exact_ids: Vec<u32> = exact.iter().map(|e| e.0).collect();
            let halk_top = model.map(|m| {
                let scores = m.score_all(&query);
                let ids = top_k_indices(&scores, top);
                let pairs = ids
                    .iter()
                    .map(|&i| (i, scores[i as usize].to_bits()))
                    .collect();
                (pairs, scores.len())
            });
            items.push(WorkItem {
                structure: s.name(),
                sparql,
                exact_ids,
                halk_top,
            });
            got += 1;
        }
        if got == 0 {
            eprintln!("load_gen: no renderable sample for structure {}", s.name());
        }
    }
    items
}

// ---------------------------------------------------------------------------
// Shared tallies
// ---------------------------------------------------------------------------

#[derive(Default)]
struct Tally {
    requests: AtomicU64,
    ok: AtomicU64,
    mismatches: AtomicU64,
    shed_overloaded: AtomicU64,
    shed_deadline: AtomicU64,
    truncated: AtomicU64,
    server_errors: AtomicU64,
    io_errors: AtomicU64,
    fault_probes: AtomicU64,
}

fn check_response(item: &WorkItem, engine: AskEngine, top: usize, resp: &Response) -> bool {
    match (engine, resp) {
        (AskEngine::Exact, Response::Answers { total, ids }) => {
            *total == item.exact_ids.len()
                && ids.as_slice() == &item.exact_ids[..top.min(item.exact_ids.len())]
        }
        (
            AskEngine::Halk,
            Response::Scores {
                truncated: false,
                scored_rows,
                hits,
            },
        ) => {
            let Some((ref pairs, rows)) = item.halk_top else {
                return false;
            };
            *scored_rows == rows
                && hits.len() == pairs.len()
                && hits
                    .iter()
                    .zip(pairs)
                    .all(|(&(id, score), &(want_id, want_bits))| {
                        id == want_id && score.to_bits() == want_bits
                    })
        }
        _ => false,
    }
}

fn client_loop(
    addr: &str,
    items: &[WorkItem],
    top: usize,
    deadline_ms: u64,
    stop: &AtomicBool,
    tally: &Tally,
    seed: u64,
) {
    let latency = metrics::histogram("loadgen_latency_us");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut client: Option<Client> = None;
    while !stop.load(Ordering::Relaxed) {
        let c = match client.as_mut() {
            Some(c) => c,
            None => match Client::connect(addr) {
                Ok(c) => client.insert(c),
                Err(_) => {
                    tally.io_errors.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(Duration::from_millis(20));
                    continue;
                }
            },
        };
        let item = &items[rng.gen_range(0..items.len())];
        let engine = if item.halk_top.is_some() && rng.gen_bool(0.5) {
            AskEngine::Halk
        } else {
            AskEngine::Exact
        };
        tally.requests.fetch_add(1, Ordering::Relaxed);
        let t0 = Instant::now();
        match c.ask(engine, top, deadline_ms, &item.sparql) {
            Ok(resp) => {
                latency.record(t0.elapsed().as_micros() as u64);
                match &resp {
                    Response::Error { kind, .. } => match kind {
                        ErrorKind::Overloaded => {
                            tally.shed_overloaded.fetch_add(1, Ordering::Relaxed);
                        }
                        ErrorKind::Deadline => {
                            tally.shed_deadline.fetch_add(1, Ordering::Relaxed);
                        }
                        ErrorKind::Shutdown => {}
                        _ => {
                            tally.server_errors.fetch_add(1, Ordering::Relaxed);
                            eprintln!("load_gen: server error on {}: {resp:?}", item.structure);
                        }
                    },
                    Response::Scores {
                        truncated: true, ..
                    } => {
                        tally.truncated.fetch_add(1, Ordering::Relaxed);
                    }
                    _ => {
                        if check_response(item, engine, top, &resp) {
                            tally.ok.fetch_add(1, Ordering::Relaxed);
                        } else {
                            tally.mismatches.fetch_add(1, Ordering::Relaxed);
                            eprintln!(
                                "load_gen: MISMATCH on {} ({engine:?}): {resp:?}\n  {}",
                                item.structure, item.sparql
                            );
                        }
                    }
                }
            }
            Err(_) => {
                tally.io_errors.fetch_add(1, Ordering::Relaxed);
                client = None; // reconnect on the next iteration
            }
        }
    }
}

// ---------------------------------------------------------------------------
// Fault injection
// ---------------------------------------------------------------------------

/// One adversarial pass: malformed frame, oversized header, mid-request
/// disconnect, slowloris dribble, and a connection burst. Every probe is
/// fire-and-forget; the daemon must survive them all (the main clients
/// keep verifying answers concurrently).
fn fault_loop(addr: &str, stop: &AtomicBool, tally: &Tally, seed: u64) {
    let mut rng = StdRng::seed_from_u64(seed);
    while !stop.load(Ordering::Relaxed) {
        match rng.gen_range(0..6u32) {
            // Garbage inside a well-formed frame.
            0 => {
                if let Ok(mut s) = TcpStream::connect(addr) {
                    let mut junk = vec![0u8; rng.gen_range(1..64)];
                    rng.fill_bytes(junk.as_mut_slice());
                    let mut frame = (junk.len() as u32).to_le_bytes().to_vec();
                    frame.extend(junk);
                    let _ = s.write_all(&frame);
                }
            }
            // Oversized length declaration — must be rejected unallocated.
            1 => {
                if let Ok(mut s) = TcpStream::connect(addr) {
                    let _ = s.write_all(&u32::MAX.to_le_bytes());
                }
            }
            // Mid-request disconnect: half a frame, then vanish.
            2 => {
                if let Ok(mut s) = TcpStream::connect(addr) {
                    let _ = s.write_all(&[64, 0, 0, 0, b'A', b'S', b'K']);
                }
            }
            // Slowloris: dribble one byte, stall past the budget.
            3 => {
                if let Ok(mut s) = TcpStream::connect(addr) {
                    let _ = s.write_all(&[64, 0, 0, 0, b'A']);
                    for _ in 0..30 {
                        if stop.load(Ordering::Relaxed) {
                            break;
                        }
                        std::thread::sleep(Duration::from_millis(50));
                    }
                }
            }
            // A deliberately panicking request: the daemon (booted with
            // --test-faults true in CI) must isolate it to an ERR frame.
            4 => {
                if let Ok(mut c) = Client::connect(addr) {
                    let _ = c.ask(AskEngine::Exact, 1, 1_000, "__panic__");
                }
            }
            // Burst: a volley of simultaneous connections to push past
            // the session/admission limits.
            _ => {
                let conns: Vec<_> = (0..24)
                    .filter_map(|_| TcpStream::connect(addr).ok())
                    .collect();
                for mut s in conns {
                    let _ = s.write_all(&halk_serve::protocol::encode_frame(b"PING"));
                }
            }
        }
        tally.fault_probes.fetch_add(1, Ordering::Relaxed);
        std::thread::sleep(Duration::from_millis(rng.gen_range(10..80)));
    }
}

// ---------------------------------------------------------------------------
// Entry point
// ---------------------------------------------------------------------------

fn main() -> ExitCode {
    let mut addr = None;
    let mut graph_path = None;
    let mut model_dir: Option<String> = None;
    let mut duration_ms = 3_000u64;
    let mut clients = 4usize;
    let mut seed = 1u64;
    let mut top = 10usize;
    let mut deadline_ms = 2_000u64;
    let mut faults = false;

    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut val = |flag: &str| it.next().unwrap_or_else(|| panic!("{flag} needs a value"));
        match a.as_str() {
            "--addr" => addr = Some(val("--addr")),
            "--graph" => graph_path = Some(val("--graph")),
            "--model" => model_dir = Some(val("--model")),
            "--duration-ms" => duration_ms = val("--duration-ms").parse().expect("number"),
            "--clients" => clients = val("--clients").parse().expect("number"),
            "--seed" => seed = val("--seed").parse().expect("number"),
            "--top" => top = val("--top").parse().expect("number"),
            "--deadline-ms" => deadline_ms = val("--deadline-ms").parse().expect("number"),
            "--faults" => faults = true,
            "--help" | "-h" => {
                println!(
                    "usage: load_gen --addr HOST:PORT --graph graph.tsv [--model DIR] \
                     [--duration-ms N] [--clients N] [--seed N] [--top N] \
                     [--deadline-ms N] [--faults]"
                );
                return ExitCode::SUCCESS;
            }
            other => {
                eprintln!("load_gen: unknown flag {other}");
                return ExitCode::from(2);
            }
        }
    }
    let Some(addr) = addr else {
        eprintln!("load_gen: --addr is required");
        return ExitCode::from(2);
    };
    let Some(graph_path) = graph_path else {
        eprintln!("load_gen: --graph is required");
        return ExitCode::from(2);
    };

    let graph = match tsv::load(Path::new(&graph_path)) {
        Ok(g) => g,
        Err(e) => {
            eprintln!("load_gen: cannot load graph {graph_path}: {e}");
            return ExitCode::FAILURE;
        }
    };
    let model = match &model_dir {
        Some(dir) => match HalkModel::load(&graph, Path::new(dir)) {
            Ok(m) => Some(m),
            Err(e) => {
                eprintln!("load_gen: cannot load model {dir}: {e}");
                return ExitCode::FAILURE;
            }
        },
        None => None,
    };

    let items = build_workload(&graph, model.as_ref(), top, 4, seed);
    if items.is_empty() {
        eprintln!("load_gen: workload is empty (graph too small?)");
        return ExitCode::FAILURE;
    }
    let structures: std::collections::BTreeSet<_> = items.iter().map(|i| i.structure).collect();
    eprintln!(
        "load_gen: {} queries over {} structures against {addr}",
        items.len(),
        structures.len()
    );

    let stop = Arc::new(AtomicBool::new(false));
    let tally = Arc::new(Tally::default());
    let items = Arc::new(items);
    let addr = Arc::new(addr);

    let mut handles = Vec::new();
    for i in 0..clients.max(1) {
        let (addr, items, stop, tally) = (addr.clone(), items.clone(), stop.clone(), tally.clone());
        handles.push(std::thread::spawn(move || {
            client_loop(
                &addr,
                &items,
                top,
                deadline_ms,
                &stop,
                &tally,
                seed ^ (i as u64 + 1).wrapping_mul(0x9e3779b97f4a7c15),
            );
        }));
    }
    if faults {
        for i in 0..2 {
            let (addr, stop, tally) = (addr.clone(), stop.clone(), tally.clone());
            handles.push(std::thread::spawn(move || {
                fault_loop(&addr, &stop, &tally, seed ^ (0xfa017 + i));
            }));
        }
    }

    std::thread::sleep(Duration::from_millis(duration_ms));
    stop.store(true, Ordering::Relaxed);
    for h in handles {
        let _ = h.join();
    }

    // Daemon-side counters from the STATS frame, so batching and the
    // server's own rolling latency/queue view show up as measured numbers
    // in the summary; 0s when the daemon is unreachable or predates the
    // STATS verb. `serve_p50_us`/`serve_p99_us` are the daemon's rolling
    // (~60 s window) quantiles — compare them against the client-observed
    // `p50_us`/`p99_us` to see how much the wire and the queue add.
    let (mut batched_groups, mut batch_p50, mut batch_p99, mut batch_cap) =
        (0u64, 0u64, 0u64, 0u64);
    let (mut serve_p50, mut serve_p99, mut queue_depth) = (0u64, 0u64, 0u64);
    if let Ok(mut c) = Client::connect(&*addr) {
        if let Ok(Response::Stats { pairs }) = c.stats() {
            for (k, v) in pairs {
                match k.as_str() {
                    "batched_groups" => batched_groups = v,
                    "batch_size_p50" => batch_p50 = v,
                    "batch_size_p99" => batch_p99 = v,
                    "batch_cap" => batch_cap = v,
                    "latency_p50_us" => serve_p50 = v,
                    "latency_p99_us" => serve_p99 = v,
                    "queue_depth" => queue_depth = v,
                    _ => {}
                }
            }
        }
    }

    let latency = metrics::histogram("loadgen_latency_us");
    let summary = format!(
        "{{\"requests\":{},\"ok\":{},\"mismatches\":{},\"shed_overloaded\":{},\
         \"shed_deadline\":{},\"truncated\":{},\"server_errors\":{},\"io_errors\":{},\
         \"fault_probes\":{},\"structures\":{},\"p50_us\":{},\"p99_us\":{},\
         \"batched_groups\":{batched_groups},\"batch_size_p50\":{batch_p50},\
         \"batch_size_p99\":{batch_p99},\"batch_cap\":{batch_cap},\
         \"serve_p50_us\":{serve_p50},\"serve_p99_us\":{serve_p99},\
         \"queue_depth\":{queue_depth}}}",
        tally.requests.load(Ordering::Relaxed),
        tally.ok.load(Ordering::Relaxed),
        tally.mismatches.load(Ordering::Relaxed),
        tally.shed_overloaded.load(Ordering::Relaxed),
        tally.shed_deadline.load(Ordering::Relaxed),
        tally.truncated.load(Ordering::Relaxed),
        tally.server_errors.load(Ordering::Relaxed),
        tally.io_errors.load(Ordering::Relaxed),
        tally.fault_probes.load(Ordering::Relaxed),
        structures.len(),
        latency.quantile(0.5),
        latency.quantile(0.99),
    );
    println!("{summary}");

    let failed =
        tally.mismatches.load(Ordering::Relaxed) > 0 || tally.ok.load(Ordering::Relaxed) == 0;
    if failed {
        ExitCode::FAILURE
    } else {
        ExitCode::SUCCESS
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use halk_kg::{generate, SynthConfig};

    /// Every sampleable structure renders to SPARQL that adapts back to a
    /// query with identical exact answers.
    #[test]
    fn rendered_sparql_preserves_exact_answers() {
        let g = generate(&SynthConfig::fb237_like(), &mut StdRng::seed_from_u64(9));
        let sampler = Sampler::new(&g);
        let mut rng = StdRng::seed_from_u64(10);
        let mut rendered = 0;
        for s in Structure::all() {
            for _ in 0..6 {
                let Some(gq) = sampler.sample(s, &mut rng) else {
                    continue;
                };
                let Some(sparql) = query_to_sparql(&gq.query) else {
                    panic!("structure {} did not render", s.name());
                };
                let round = halk_sparql::sparql_to_query(&sparql)
                    .unwrap_or_else(|e| panic!("{}: {e}\n  {sparql}", s.name()));
                let want = execute_set(
                    &PlanShape::compile(&gq.query),
                    &PlanBindings::of(&gq.query),
                    &g,
                );
                let got = execute_set(&PlanShape::compile(&round), &PlanBindings::of(&round), &g);
                assert_eq!(
                    got.iter().collect::<Vec<_>>(),
                    want.iter().collect::<Vec<_>>(),
                    "{}: answers diverge\n  {sparql}",
                    s.name()
                );
                rendered += 1;
            }
        }
        assert!(rendered > 50, "only {rendered} renderings exercised");
    }
}
