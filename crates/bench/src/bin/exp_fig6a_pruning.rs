//! Figure 6a: GFinder accuracy and online query time before/after HaLk
//! pruning, on the 6 large query structures (2ipp 2ippu 2ippd 3ipp 3ippu
//! 3ippd) over the NELL stand-in.
//!
//! Protocol (§IV-D): HaLk produces top-20 candidates for every variable
//! node of each query; the union induces a data graph; GFinder runs on the
//! induced graph. Accuracy is recall@|truth| against the exact answers of
//! the *test* graph while the matcher sees the (incomplete) training graph.
//!
//! Run with `cargo run --release -p halk-bench --bin exp_fig6a_pruning`.

use halk_bench::{save_json, RunObs, Scale, Table};
use halk_core::prune::{candidate_set, induced_graph};
use halk_core::{train_model, HalkModel};
use halk_kg::Dataset;
use halk_logic::{answers, Sampler, Structure};
use halk_matching::{answer_accuracy, Matcher};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde_json::json;
use std::time::Instant;

fn main() {
    let mut obs = RunObs::init("fig6a_pruning");
    let scale = Scale::from_env();
    obs.scale(&scale);
    let queries_per_structure = scale.eval_queries.min(20);
    eprintln!(
        "Fig. 6a (pruning, NELL) at scale '{}' ({} queries/structure)",
        scale.name(),
        queries_per_structure
    );
    let nell = Dataset::standard_suite(&mut StdRng::seed_from_u64(scale.seed))
        .into_iter()
        .find(|d| d.name == "NELL")
        .expect("NELL in the standard suite");

    let mut halk = HalkModel::new(&nell.split.train, scale.model_config());
    let stats = train_model(
        &mut halk,
        &nell.split.train,
        &Structure::training(),
        &scale.train_config(),
    )
    .expect("training failed");
    eprintln!("  trained HaLk in {:.1?}", stats.wall);

    let mut acc_table = Table::new(
        "Fig. 6a — GFinder accuracy (%) before/after HaLk pruning",
        &["before", "after"],
    )
    .percentages();
    let mut time_table = Table::new(
        "Fig. 6a — GFinder query time (ms) before/after HaLk pruning",
        &["before", "after"],
    )
    .precision(2);

    let mut rng = StdRng::seed_from_u64(scale.seed ^ 0x6A);
    let sampler = Sampler::new(&nell.split.test);
    let mut json_rows = Vec::new();
    for s in Structure::pruning6() {
        let (mut acc_b, mut acc_a) = (0.0, 0.0);
        let (mut ms_b, mut ms_a) = (0.0f64, 0.0f64);
        let mut n = 0usize;
        for gq in sampler.sample_many(s, queries_per_structure, &mut rng) {
            let truth = answers(&gq.query, &nell.split.test);
            if truth.is_empty() {
                continue;
            }
            // Before: GFinder on the full (train) data graph.
            let matcher = Matcher::new(&nell.split.train);
            let t0 = Instant::now();
            let before = matcher.answer_entities(&gq.query);
            ms_b += t0.elapsed().as_secs_f64() * 1e3;
            acc_b += answer_accuracy(&before, &truth);

            // After: induced graph from HaLk's top-20 candidates per node.
            let t1 = Instant::now();
            let cands = candidate_set(&halk, &gq.query, 20);
            let small = induced_graph(&nell.split.train, &cands);
            let pruned_matcher = Matcher::new(&small);
            let after = pruned_matcher.answer_entities(&gq.query);
            ms_a += t1.elapsed().as_secs_f64() * 1e3;
            acc_a += answer_accuracy(&after, &truth);
            n += 1;
        }
        let n = n.max(1) as f64;
        acc_table.push_row(s.name(), vec![Some(acc_b / n), Some(acc_a / n)]);
        time_table.push_row(s.name(), vec![Some(ms_b / n), Some(ms_a / n)]);
        json_rows.push(json!({
            "structure": s.name(),
            "acc_before": acc_b / n,
            "acc_after": acc_a / n,
            "ms_before": ms_b / n,
            "ms_after": ms_a / n,
        }));
    }
    acc_table.print();
    time_table.print();
    if let Some(p) = save_json(
        "fig6a_pruning",
        &json!({ "scale": scale.name(), "rows": json_rows }),
    ) {
        eprintln!("results written to {}", p.display());
    }
    obs.finish();
}
