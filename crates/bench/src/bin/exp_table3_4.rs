//! Tables III and IV: MRR and Hit@3 for the 4 negation structures
//! (2in 3in pni pin) on the three benchmark datasets, for the
//! negation-capable methods ConE / MLPMix / HaLk.
//!
//! Run with `cargo run --release -p halk-bench --bin exp_table3_4`.

use halk_bench::suite::{standard_datasets, train_suite, ModelKind};
use halk_bench::{save_json, truncated_structures, RunObs, Scale, Table};
use halk_core::eval::{evaluate_table, row_average};
use halk_logic::Structure;
use serde_json::json;

fn main() {
    let mut obs = RunObs::init("table3_4");
    let scale = Scale::from_env();
    obs.scale(&scale);
    eprintln!(
        "Tables III-IV at scale '{}' (dim {}, {} steps)",
        scale.name(),
        scale.dim,
        scale.steps
    );
    let structures = Structure::table34();
    let mut columns: Vec<&str> = structures.iter().map(|s| s.name()).collect();
    columns.push("AVG");

    let mut json_out = Vec::new();
    for dataset in standard_datasets(&scale) {
        eprintln!("dataset {}:", dataset.name);
        let suite = train_suite(&dataset.split, &scale, &ModelKind::negation_capable());

        let mut mrr_table = Table::new(
            format!("Table III (MRR %, negation) — {}", dataset.name),
            &columns,
        )
        .percentages();
        let mut hit3_table = Table::new(
            format!("Table IV (Hit@3 %, negation) — {}", dataset.name),
            &columns,
        )
        .percentages();

        let mut truncated_out = Vec::new();
        for trained in &suite {
            let row = evaluate_table(
                trained.model.as_ref(),
                &dataset.split,
                &structures,
                scale.eval_queries,
                scale.seed ^ 0x34,
            );
            let mut mrr_cells: Vec<Option<f64>> =
                row.iter().map(|(_, c)| c.map(|c| c.metrics.mrr)).collect();
            let mut hit3_cells: Vec<Option<f64>> = row
                .iter()
                .map(|(_, c)| c.map(|c| c.metrics.hits3))
                .collect();
            mrr_cells.push(Some(row_average(&row, |m| m.mrr)));
            hit3_cells.push(Some(row_average(&row, |m| m.hits3)));
            mrr_table.push_row(trained.name(), mrr_cells);
            hit3_table.push_row(trained.name(), hit3_cells);
            truncated_out.push(json!({
                "model": trained.name(),
                "structures": truncated_structures(&row),
            }));
        }
        mrr_table.print();
        hit3_table.print();
        json_out.push(json!({
            "dataset": dataset.name,
            "mrr": mrr_table.to_json(),
            "hit3": hit3_table.to_json(),
            // Cells whose attempt budget ran out before `eval_queries`
            // answerable queries were found — read these MRRs with care.
            "truncated": truncated_out,
        }));
    }
    if let Some(p) = save_json(
        "table3_4",
        &json!({ "scale": scale.name(), "results": json_out }),
    ) {
        eprintln!("results written to {}", p.display());
    }
    obs.finish();
}
