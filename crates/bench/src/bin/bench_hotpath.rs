//! Hot-path regression harness (ISSUE PR 2, extended in PRs 3–4): times the
//! kernels the whole reproduction sits on — `score_all` (vectorized vs the
//! retained scalar reference), one optimizer step, sampler throughput, dense
//! `matmul`, the parallel-runtime eval/train paths at the ambient thread
//! count vs one worker, and the query-plan compiler (compile-from-scratch
//! vs a warm-cache embed) — at fixed seeds, and writes `BENCH_hotpath.json`
//! at the repo root so future changes can be diffed with `--compare`
//! (schema `halk-bench-hotpath/v8`; `--compare` still reads v1-v7
//! baselines, comparing the shared keys). The v4 schema added a
//! `tracing_overhead_disabled` entry (one `span!` open+close with no trace
//! file configured — must stay at a few ns) and a `metrics_snapshot` field
//! recording where the metrics-registry snapshot (pool busy/wall
//! histograms, plan-cache and eval counters accumulated while benching)
//! was written: `results/bench_hotpath_metrics.json` by default,
//! `--metrics-out` to override. The v5 schema adds a serving-scale pair
//! at 8000 entities, both normalized to ns per query over a group of 8
//! same-skeleton requests: `score_all_8000` (the pre-sharding serve path
//! — per request, one plan embedding, a fresh full score vector, an
//! argsort top-k) against `topk_sharded_8000` (what the serving worker
//! now runs: one batched embedding for the group, then arc-sharded
//! streaming heaps + merge-k), so `--compare` gates the sharded kernel
//! too. The v6 schema adds the serving-ready cold-start pair at 8000
//! entities / 50k triples — `tsv_boot_8000` (triple TSV parse +
//! `HalkModel::new` seeded init + checkpoint load + the sin/cos trig
//! shard build, the pre-snapshot serve boot) against `snapshot_boot_8000`
//! (`halk_snap::read_file`: one CRC-framed binary decode into the
//! `from_parts` constructors, then re-slicing the shipped TRIG table into
//! shards) — plus the quantized scoring pair `score_all_8000_f32` /
//! `score_all_8000_i16` (same queries, same hoisted output buffer, trig
//! stored at each precision). The v7 schema adds `executor_group_8000`:
//! the same 8-query group submitted through the skeleton-keyed batch
//! executor (`halk_core::exec`, ISSUE 9) with a serve-style backend, so
//! `--compare` gates the executor's envelope (keying, grouping, obs,
//! scatter) on top of the raw batched kernel it wraps. The v8 schema adds
//! the windowed-histogram record pair (ISSUE 10): `windowed_record_disarmed`
//! (the default for batch binaries — one relaxed load + branch, same
//! contract as `tracing_overhead_disabled`) and `windowed_record_armed`
//! (what a live daemon pays per latency sample).
//!
//! Usage:
//!   bench_hotpath [--smoke] [--out <path>] [--compare <old.json>]
//!                 [--metrics-out <path>]
//!
//! `--smoke` runs a seconds-scale configuration (CI sanity; does not write
//! the JSON unless `--out` is given). `--compare` exits non-zero if any
//! shared benchmark regressed by more than 15%, naming each regressed
//! entry with its slowdown percentage.

use halk_core::{
    evaluate_structure_pool, top_k_indices, ArcShards, ExecBackend, ExecConfig, Executor,
    HalkConfig, HalkModel, Pool, Precision, QueryModel, ShapeKey, ShardedTrig, TrainExample,
};
use halk_kg::{generate, DatasetSplit, Graph, SynthConfig};
use halk_logic::plan::{PlanBindings, PlanShape};
use halk_logic::{answers, Sampler, Structure};
use halk_obs::Deadline;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde_json::{json, Value};
use std::hint::black_box;
use std::time::Instant;

/// Regression threshold for `--compare`: new median may exceed the old one
/// by at most this factor.
const REGRESSION_FACTOR: f64 = 1.15;

struct Args {
    smoke: bool,
    out: Option<String>,
    compare: Option<String>,
    metrics_out: Option<String>,
}

fn parse_args() -> Args {
    let mut args = Args {
        smoke: false,
        out: None,
        compare: None,
        metrics_out: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--smoke" => args.smoke = true,
            "--out" => args.out = it.next(),
            "--compare" => args.compare = it.next(),
            "--metrics-out" => args.metrics_out = it.next(),
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!(
                    "usage: bench_hotpath [--smoke] [--out <path>] [--compare <old.json>] \
                     [--metrics-out <path>]"
                );
                std::process::exit(2);
            }
        }
    }
    args
}

/// Times `f` over `samples` batches of `iters` calls each; returns the
/// median per-call nanoseconds (median over batches is robust to one-off
/// scheduler noise without needing many iterations).
fn median_ns(samples: usize, iters: usize, mut f: impl FnMut()) -> f64 {
    f(); // warm-up (page in code, fill buffer pools)
    let mut per_call: Vec<f64> = (0..samples)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..iters {
                f();
            }
            t.elapsed().as_nanos() as f64 / iters as f64
        })
        .collect();
    per_call.sort_by(f64::total_cmp);
    per_call[per_call.len() / 2]
}

fn batch_for(g: &Graph, s: Structure, n: usize, seed: u64) -> Vec<TrainExample> {
    let sampler = Sampler::new(g);
    let mut rng = StdRng::seed_from_u64(seed);
    sampler
        .sample_many(s, n, &mut rng)
        .into_iter()
        .map(|gq| {
            let ans = answers(&gq.query, g);
            let positive = ans.iter().next().expect("non-empty");
            let negatives = sampler.negatives(&ans, 16, &mut rng);
            TrainExample {
                positive,
                negatives,
                query: gq.query,
            }
        })
        .collect()
}

fn main() {
    let args = parse_args();
    // Pool/plan/eval metrics accumulate while benching; the snapshot at the
    // end captures them. HALK_TRACE works here like everywhere else.
    halk_core::obs::install();
    halk_obs::trace::init_from_env();
    // (samples, iters) per benchmark family: enough for a stable median at
    // full scale, seconds total under --smoke.
    let (samples, iters) = if args.smoke { (3, 3) } else { (9, 20) };
    let cfg = if args.smoke {
        HalkConfig::tiny()
    } else {
        HalkConfig::default()
    };
    let matmul_n = if args.smoke { 32 } else { 128 };

    let g = generate(&SynthConfig::fb237_like(), &mut StdRng::seed_from_u64(1));
    let mut model = HalkModel::new(&g, cfg.clone());
    let sampler = Sampler::new(&g);

    // A multi-branch (union) query plus a plain projection: the two shapes
    // online answering spends its time in.
    let up = sampler
        .sample(Structure::Up, &mut StdRng::seed_from_u64(3))
        .expect("groundable up query");
    let p2 = sampler
        .sample(Structure::P2, &mut StdRng::seed_from_u64(4))
        .expect("groundable p2 query");

    let mut results: Vec<(String, Value)> = Vec::new();
    let mut record = |name: &str, ns: f64, iters: usize| {
        println!("{name:24} {ns:>12.0} ns/op   ({iters} iters/sample)");
        results.push((name.to_string(), json!({ "median_ns": ns, "iters": iters })));
    };

    // --- score_all: vectorized kernel (public path) vs scalar reference.
    let ns_vec = median_ns(samples, iters, || {
        black_box(model.score_all(&up.query));
    });
    record("score_all_up", ns_vec, iters);
    let ns_scalar = median_ns(samples, iters, || {
        black_box(model.score_all_scalar(&up.query));
    });
    record("score_all_up_scalar", ns_scalar, iters);
    let ns_vec_p2 = median_ns(samples, iters, || {
        black_box(model.score_all(&p2.query));
    });
    record("score_all_p2", ns_vec_p2, iters);
    let ns_scalar_p2 = median_ns(samples, iters, || {
        black_box(model.score_all_scalar(&p2.query));
    });
    record("score_all_p2_scalar", ns_scalar_p2, iters);
    // Amortized shape (what prune::candidate_set does): entity trig and the
    // output buffer hoisted out of the loop.
    let trig = model.entity_trig();
    let mut scores = Vec::new();
    let ns_amort = median_ns(samples, iters, || {
        model.score_all_with(&trig, &up.query, &mut scores);
        black_box(&scores);
    });
    record("score_all_up_cached_trig", ns_amort, iters);

    // --- query-plan compiler (PR 4): one cold compile (DNF rewrite + slot
    // dedup + binding extraction) vs a full embed through the warm
    // per-structure cache — the amortization the plan IR buys.
    let ns_compile = median_ns(samples, iters, || {
        let shape = PlanShape::compile(&up.query);
        let bindings = PlanBindings::of(&up.query);
        black_box((shape, bindings));
    });
    record("plan_compile_up", ns_compile, iters);
    let ns_embed_cached = median_ns(samples, iters, || {
        black_box(model.embed_query(&up.query));
    });
    record("embed_up_cached_plan", ns_embed_cached, iters);

    // --- disabled-tracing overhead: one span open+close with no trace file
    // configured must cost a few ns (one relaxed atomic load and an inert
    // guard drop). This is the zero-cost-when-disabled contract of
    // halk-obs; regressions here slow every instrumented hot path.
    let span_iters = 10_000;
    let ns_span = median_ns(samples, span_iters, || {
        let guard = halk_obs::span!("bench_disabled_span");
        black_box(&guard);
    });
    record("tracing_overhead_disabled", ns_span, span_iters);

    // --- windowed-histogram record path (PR 10). Disarmed (the default
    // for every batch binary) must cost one relaxed load + branch, the
    // same contract as disabled tracing; the unconditional path is what a
    // live daemon pays per latency sample — an Acquire slot-index load
    // plus two relaxed fetch_adds.
    let wh = halk_obs::window::histogram("bench_windowed_record_us");
    let ns_disarmed = median_ns(samples, span_iters, || {
        wh.record(black_box(137));
    });
    record("windowed_record_disarmed", ns_disarmed, span_iters);
    let ns_armed = median_ns(samples, span_iters, || {
        wh.record_unconditional(black_box(137));
    });
    record("windowed_record_armed", ns_armed, span_iters);

    // --- one optimizer step (embed + loss + backward + Adam), pooled tape.
    let batch = batch_for(&g, Structure::Pi, cfg.batch_size, 2);
    let train_iters = if args.smoke { 2 } else { 5 };
    let ns_train = median_ns(samples, train_iters, || {
        black_box(model.train_batch(&batch));
    });
    record("train_step_pi", ns_train, train_iters);

    // --- sampler throughput (queries/s feeds the training loop).
    let n_q = if args.smoke { 8 } else { 64 };
    let mut srng = StdRng::seed_from_u64(5);
    let ns_sample = median_ns(samples, iters, || {
        black_box(sampler.sample_many(Structure::Pi, n_q, &mut srng));
    });
    record("sampler_pi_batch", ns_sample, iters);

    // --- dense matmul (the MLP workhorse), branch-free inner loop.
    let mut mrng = StdRng::seed_from_u64(6);
    let a = halk_nn::init::uniform(matmul_n, matmul_n, -1.0, 1.0, &mut mrng);
    let b = halk_nn::init::uniform(matmul_n, matmul_n, -1.0, 1.0, &mut mrng);
    let ns_matmul = median_ns(samples, iters, || {
        black_box(a.matmul(&b));
    });
    record(&format!("matmul_{matmul_n}"), ns_matmul, iters);

    // --- parallel runtime (PR 3): an evaluation sweep and a training step
    // at the ambient thread count vs one worker. Thread counts and the
    // host's hardware parallelism are recorded so speedups are read in
    // context (on a single-core host both pools collapse to one worker and
    // the ratio is ~1.0 by construction).
    let threads = halk_par::auto_threads();
    let hardware_threads = std::thread::available_parallelism().map_or(1, |n| n.get());
    let split = DatasetSplit::nested(&g, 0.8, 0.1, &mut StdRng::seed_from_u64(7));
    let eval_q = if args.smoke { 4 } else { 16 };
    let ns_eval_1 = median_ns(samples, 1, || {
        black_box(evaluate_structure_pool(
            &model,
            &split,
            Structure::P2,
            eval_q,
            11,
            Pool::new(1),
        ));
    });
    let ns_eval_n = median_ns(samples, 1, || {
        black_box(evaluate_structure_pool(
            &model,
            &split,
            Structure::P2,
            eval_q,
            11,
            Pool::new(threads),
        ));
    });
    let eval_speedup = ns_eval_1 / ns_eval_n;
    println!("eval_parallel            {ns_eval_n:>12.0} ns/op   ({threads} threads, {eval_speedup:.2}x vs 1 thread)");
    results.push((
        "eval_parallel".to_string(),
        json!({
            "median_ns": ns_eval_n,
            "iters": 1,
            "threads": threads,
            "baseline_1thread_ns": ns_eval_1,
            "speedup_vs_1thread": eval_speedup,
        }),
    ));

    model.set_threads(1);
    let ns_train_1 = median_ns(samples, train_iters, || {
        black_box(model.train_batch(&batch));
    });
    model.set_threads(threads);
    let ns_train_n = median_ns(samples, train_iters, || {
        black_box(model.train_batch(&batch));
    });
    model.set_threads(0);
    let train_speedup = ns_train_1 / ns_train_n;
    println!("train_step_parallel      {ns_train_n:>12.0} ns/op   ({threads} threads, {train_speedup:.2}x vs 1 thread)");
    results.push((
        "train_step_parallel".to_string(),
        json!({
            "median_ns": ns_train_n,
            "iters": train_iters,
            "threads": threads,
            "baseline_1thread_ns": ns_train_1,
            "speedup_vs_1thread": train_speedup,
        }),
    ));

    // --- sharded streaming top-k (PR 7) at serving scale: 8000 entities,
    // same config otherwise. `score_all_8000` is the pre-sharding serve
    // path — a fresh full score vector plus `top_k_indices` argsort per
    // request, repeated for each request in a group of 8; `topk_sharded_8000`
    // is what `halk serve`'s worker now runs for that same group: one batched
    // plan embedding (`scorers_for_shape`, B = 8) plus one sharded sweep — 8
    // arc shards streamed through bounded heaps, each trig slice visited once
    // for the whole group, merged by rank, never materializing the O(n)
    // vector. Both report ns *per query*. One worker on purpose: the win
    // measured here is embed amortization plus the avoided per-request
    // allocations and the 4 KB slice working set, not parallelism.
    let g8 = generate(
        &SynthConfig {
            n_entities: 8000,
            ..SynthConfig::fb237_like()
        },
        &mut StdRng::seed_from_u64(8),
    );
    let model8 = HalkModel::new(&g8, cfg.clone());
    let sampler8 = Sampler::new(&g8);
    let mut rng8 = StdRng::seed_from_u64(9);
    let group8: Vec<_> = (0..64)
        .filter_map(|_| sampler8.sample(Structure::P2, &mut rng8))
        .map(|gq| gq.query)
        .take(8)
        .collect();
    assert_eq!(group8.len(), 8, "8 groundable p2 queries");
    let trig8 = model8.entity_trig();
    let sharded8 = model8.entity_shards(8);
    let pool1 = Pool::new(1);
    let never = Deadline::never();
    let ns_full8 = median_ns(samples, iters, || {
        for q in &group8 {
            let mut scores = Vec::new();
            model8.score_all_until(&trig8, q, &mut scores, &never);
            black_box(top_k_indices(&scores, 10));
        }
    }) / group8.len() as f64;
    println!("score_all_8000           {ns_full8:>12.0} ns/op   ({iters} iters/sample)");
    results.push((
        "score_all_8000".to_string(),
        json!({
            "median_ns": ns_full8,
            "iters": iters,
            "n_entities": 8000,
            "k": 10,
            "group": group8.len(),
        }),
    ));
    let shape8 = PlanShape::compile(&group8[0]);
    let ks8 = [10usize; 8];
    let deadlines8 = [&never; 8];
    let ns_sharded8 = median_ns(samples, iters, || {
        let refs: Vec<&halk_logic::Query> = group8.iter().collect();
        let scorers = model8.scorers_for_shape(&shape8, &refs);
        black_box(halk_core::sharded_top_k(
            &pool1,
            &sharded8,
            &scorers,
            &ks8,
            &deadlines8,
        ));
    }) / group8.len() as f64;
    println!("topk_sharded_8000        {ns_sharded8:>12.0} ns/op   ({iters} iters/sample)");
    results.push((
        "topk_sharded_8000".to_string(),
        json!({
            "median_ns": ns_sharded8,
            "iters": iters,
            "n_entities": 8000,
            "k": 10,
            "group": group8.len(),
            "shards": 8,
            "pool_threads": 1,
        }),
    ));
    let sharded_speedup = ns_full8 / ns_sharded8;

    // --- the skeleton-keyed batch executor (ISSUE 9): the same 8-query
    // group pushed through `Executor::submit` with a serve-style backend.
    // Keying, group formation, obs accounting, and the scatter back to
    // submission order all ride on top of the batched embed + sharded
    // sweep `topk_sharded_8000` times in isolation, so the pair prices the
    // executor's envelope — the derived overhead ratio must stay ~1.0.
    struct BenchServe<'a> {
        model: &'a HalkModel,
    }
    impl ExecBackend for BenchServe<'_> {
        type Job = halk_logic::Query;
        type Out = Vec<u32>;
        fn key_of(&self, exec: &Executor, job: &Self::Job) -> Option<ShapeKey> {
            Some(ShapeKey::new(exec.shape_for(job)))
        }
        fn exec_group(
            &self,
            exec: &Executor,
            key: Option<&ShapeKey>,
            jobs: &[&Self::Job],
        ) -> Vec<Vec<u32>> {
            let shape = key.expect("bench jobs carry shapes").shape();
            let sharded = exec.sharded_trig(self.model);
            let refs: Vec<&halk_logic::Query> = jobs.to_vec();
            let scorers = exec.scorers_for_group(self.model, shape, &refs);
            let never = Deadline::never();
            let ks = vec![10usize; jobs.len()];
            let deadlines: Vec<&Deadline> = jobs.iter().map(|_| &never).collect();
            halk_core::sharded_top_k(&exec.pool(), &sharded, &scorers, &ks, &deadlines)
                .into_iter()
                .map(|(hits, _)| hits.into_iter().map(|(e, _)| e).collect())
                .collect()
        }
    }
    let exec8 = Executor::new(ExecConfig {
        threads: 1,
        shards: 8,
        label: "model_batch",
        ..ExecConfig::default()
    });
    let _ = exec8.sharded_trig(&model8); // warm the resident tables, like a serve boot
    let backend8 = BenchServe { model: &model8 };
    let ns_exec8 = median_ns(samples, iters, || {
        black_box(exec8.submit(&backend8, &group8));
    }) / group8.len() as f64;
    println!("executor_group_8000      {ns_exec8:>12.0} ns/op   ({iters} iters/sample)");
    results.push((
        "executor_group_8000".to_string(),
        json!({
            "median_ns": ns_exec8,
            "iters": iters,
            "n_entities": 8000,
            "k": 10,
            "group": group8.len(),
            "shards": 8,
            "pool_threads": 1,
        }),
    ));
    let executor_overhead = ns_exec8 / ns_sharded8;

    // --- quantized scoring (ISSUE 8): the same 8-query group swept with
    // the trig table stored at F32 vs I16 fixed point. Both use the
    // amortized shape (hoisted trig + reusable output buffer) so the
    // number isolates the kernel, not allocation. I16 halves the resident
    // table; whether it also wins wall-clock at a cache-resident 8000×d
    // scale is exactly what this pair records honestly.
    let trig8_i16 = model8.entity_trig_with(Precision::I16);
    let mut qscores = Vec::new();
    let ns_q_f32 = median_ns(samples, iters, || {
        for q in &group8 {
            model8.score_all_with(&trig8, q, &mut qscores);
            black_box(&qscores);
        }
    }) / group8.len() as f64;
    println!("score_all_8000_f32       {ns_q_f32:>12.0} ns/op   ({iters} iters/sample)");
    results.push((
        "score_all_8000_f32".to_string(),
        json!({
            "median_ns": ns_q_f32,
            "iters": iters,
            "n_entities": 8000,
            "group": group8.len(),
            "trig_resident_bytes": trig8.resident_bytes(),
        }),
    ));
    let ns_q_i16 = median_ns(samples, iters, || {
        for q in &group8 {
            model8.score_all_with(&trig8_i16, q, &mut qscores);
            black_box(&qscores);
        }
    }) / group8.len() as f64;
    println!("score_all_8000_i16       {ns_q_i16:>12.0} ns/op   ({iters} iters/sample)");
    results.push((
        "score_all_8000_i16".to_string(),
        json!({
            "median_ns": ns_q_i16,
            "iters": iters,
            "n_entities": 8000,
            "group": group8.len(),
            "trig_resident_bytes": trig8_i16.resident_bytes(),
        }),
    ));
    let quantized_ratio = ns_q_f32 / ns_q_i16;

    // --- cold start (ISSUE 8): the two ways `halk serve` can reach a
    // *serving-ready* engine — graph loaded, model restored, shard-local
    // trig tables built — at the 10x Table VI scale (8000 entities and a
    // realistically dense 50k triples; the quantized-scoring graph above
    // keeps the sparser seed for schema continuity). The TSV path is what
    // boot cost before snapshots: parse the triple TSV, pay
    // `HalkModel::new`'s O(n_entities * dim) seeded init plus the grouping
    // sweep, load the checkpoint (values + Adam moments), then compute the
    // sin/cos trig sweep. The snapshot path is one CRC-verified binary
    // decode whose TRIG section is re-sliced into shards without any
    // recompute. Medians over single boots (a boot is a one-shot event;
    // batching would hide allocator effects).
    let boot_cfg = SynthConfig {
        n_entities: 8000,
        n_triples: 50_000,
        ..SynthConfig::fb237_like()
    };
    let boot_g = generate(&boot_cfg, &mut StdRng::seed_from_u64(9));
    let boot_model = HalkModel::new(&boot_g, cfg.clone());
    let boot_shards = 4usize;
    let boot_dir = std::env::temp_dir().join(format!("halk_bench_boot_{}", std::process::id()));
    std::fs::create_dir_all(&boot_dir).expect("create boot scratch dir");
    let tsv_path = boot_dir.join("g8.tsv");
    let model_dir = boot_dir.join("model8");
    let snap_path = boot_dir.join("g8.snap");
    halk_kg::tsv::save(&boot_g, &tsv_path).expect("write tsv");
    boot_model.save(&model_dir).expect("write model dir");
    halk_snap::write_file(&snap_path, &boot_g, &boot_model).expect("write snapshot");
    let boot_samples = if args.smoke { 3 } else { 7 };
    let ns_tsv_boot = median_ns(boot_samples, 1, || {
        let g = halk_kg::tsv::load(&tsv_path).expect("tsv boot: graph");
        let m = HalkModel::load(&g, &model_dir).expect("tsv boot: model");
        let sharded = m.entity_shards_with(boot_shards, Precision::F32);
        black_box((g, m, sharded));
    });
    println!("tsv_boot_8000            {ns_tsv_boot:>12.0} ns/op   (1 iters/sample)");
    results.push((
        "tsv_boot_8000".to_string(),
        json!({
            "median_ns": ns_tsv_boot,
            "iters": 1,
            "n_entities": 8000,
            "n_triples": boot_g.n_triples(),
            "shards": boot_shards,
        }),
    ));
    let ns_snap_boot = median_ns(boot_samples, 1, || {
        let (g, m, trig) = halk_snap::read_file(&snap_path).expect("snapshot boot");
        let parts = ArcShards::new(trig.n_entities(), boot_shards);
        let sharded = ShardedTrig::from_table(&trig, &parts, Precision::F32);
        drop(trig); // the engine keeps only the shard slices resident
        black_box((g, m, sharded));
    });
    println!("snapshot_boot_8000       {ns_snap_boot:>12.0} ns/op   (1 iters/sample)");
    results.push((
        "snapshot_boot_8000".to_string(),
        json!({
            "median_ns": ns_snap_boot,
            "iters": 1,
            "n_entities": 8000,
            "n_triples": boot_g.n_triples(),
            "shards": boot_shards,
            "snapshot_bytes": std::fs::metadata(&snap_path).map_or(0, |m| m.len()),
        }),
    ));
    let boot_speedup = ns_tsv_boot / ns_snap_boot;
    // Both boots must land on the same deployment: snapshot answers are
    // bit-identical to the TSV path's by construction — spot-check it here
    // so the speedup number can never be quoted for a divergent decode.
    {
        let (gs, ms, trig_s) = halk_snap::read_file(&snap_path).expect("snapshot boot");
        let gt = halk_kg::tsv::load(&tsv_path).expect("tsv boot: graph");
        let mt = HalkModel::load(&gt, &model_dir).expect("tsv boot: model");
        assert_eq!(gs.triples(), gt.triples(), "snapshot graph drifted");
        let probe = {
            let t = boot_g.triples()[0];
            halk_logic::Query::atom(t.h, t.r)
        };
        assert_eq!(
            ms.score_all(&probe),
            mt.score_all(&probe),
            "snapshot model scores drifted"
        );
        // The shipped trig scores the same bits as a fresh TSV-side build.
        let mut via_snap = Vec::new();
        ms.score_all_with(&trig_s, &probe, &mut via_snap);
        assert_eq!(via_snap, mt.score_all(&probe), "snapshot trig drifted");
    }
    let _ = std::fs::remove_dir_all(&boot_dir);

    let speedup = ns_scalar / ns_vec;
    let speedup_p2 = ns_scalar_p2 / ns_vec_p2;
    println!("score_all speedup vs scalar: up {speedup:.2}x, p2 {speedup_p2:.2}x");
    println!("topk_sharded_8000 vs score_all_8000: {sharded_speedup:.2}x");
    println!("executor_group_8000 vs topk_sharded_8000: {executor_overhead:.2}x envelope");
    println!("score_all_8000 f32 vs i16: {quantized_ratio:.2}x");
    println!("snapshot_boot_8000 vs tsv_boot_8000: {boot_speedup:.2}x");

    // Snapshot the metrics the instrumented paths accumulated while
    // benching (pool regions, plan-cache hits/misses, eval counters).
    let metrics_path = args
        .metrics_out
        .clone()
        .unwrap_or_else(|| "results/bench_hotpath_metrics.json".to_string());
    match halk_obs::metrics::write_snapshot(&metrics_path) {
        Ok(()) => println!("metrics snapshot written to {metrics_path}"),
        Err(e) => halk_obs::log!(Error, "cannot write metrics snapshot {metrics_path}: {e}"),
    }

    let report = json!({
        "schema": "halk-bench-hotpath/v8",
        "metrics_snapshot": metrics_path,
        "config": json!({
            "smoke": args.smoke,
            "dim": cfg.dim,
            "n_entities": g.n_entities(),
            "n_relations": g.n_relations(),
            "batch_size": cfg.batch_size,
            "matmul_n": matmul_n,
            "samples": samples,
            "seed": 1,
            "threads": threads,
            "hardware_threads": hardware_threads,
            "tracing_enabled": halk_obs::trace::enabled(),
        }),
        "results": Value::Object(results),
        "derived": json!({
            "score_all_up_speedup": speedup,
            "score_all_p2_speedup": speedup_p2,
            "eval_parallel_speedup": eval_speedup,
            "train_parallel_speedup": train_speedup,
            "topk_sharded_8000_speedup": sharded_speedup,
            "executor_group_8000_overhead": executor_overhead,
            "score_all_8000_f32_vs_i16": quantized_ratio,
            "snapshot_boot_8000_speedup": boot_speedup,
        }),
    });

    // Full runs refresh the committed baseline by default; --smoke only
    // writes when asked (CI must not clobber the release-mode numbers).
    let out_path = match (&args.out, args.smoke) {
        (Some(p), _) => Some(p.clone()),
        (None, false) => Some("BENCH_hotpath.json".to_string()),
        (None, true) => None,
    };
    if let Some(path) = out_path {
        let text = serde_json::to_string_pretty(&report).expect("serialize");
        std::fs::write(&path, text + "\n").expect("write benchmark json");
        println!("wrote {path}");
    }

    if let Some(old_path) = args.compare {
        let old_text = std::fs::read_to_string(&old_path)
            .unwrap_or_else(|e| panic!("cannot read {old_path}: {e}"));
        let old: Value = serde_json::from_str(&old_text).expect("parse old json");
        std::process::exit(compare(&old, &report));
    }
}

/// Compares shared benchmark keys; returns the process exit code (0 = ok,
/// 1 = at least one regression beyond [`REGRESSION_FACTOR`]).
fn compare(old: &Value, new: &Value) -> i32 {
    let old_results = match old.get("results") {
        Some(Value::Object(fields)) => fields,
        _ => {
            eprintln!("old json has no `results` object");
            return 2;
        }
    };
    let new_results = match new.get("results") {
        Some(Value::Object(fields)) => fields,
        _ => unreachable!("report always has results"),
    };
    let mut regressed: Vec<(String, f64)> = Vec::new();
    for (name, old_entry) in old_results {
        let Some(old_ns) = old_entry.get("median_ns").and_then(Value::as_f64) else {
            continue;
        };
        let Some(new_ns) = new_results
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, e)| e.get("median_ns"))
            .and_then(Value::as_f64)
        else {
            println!("compare {name:24} (absent in new run, skipped)");
            continue;
        };
        let ratio = new_ns / old_ns;
        let verdict = if ratio > REGRESSION_FACTOR {
            regressed.push((name.clone(), (ratio - 1.0) * 100.0));
            "REGRESSION"
        } else {
            "ok"
        };
        println!("compare {name:24} {old_ns:>12.0} -> {new_ns:>12.0} ns  ({ratio:.2}x)  {verdict}");
    }
    if regressed.is_empty() {
        println!("no regressions beyond {REGRESSION_FACTOR}x");
        0
    } else {
        let list = regressed
            .iter()
            .map(|(name, pct)| format!("{name} +{pct:.1}%"))
            .collect::<Vec<_>>()
            .join(", ");
        eprintln!(
            "regression: {} entr{} slowed beyond {REGRESSION_FACTOR}x: {list}",
            regressed.len(),
            if regressed.len() == 1 { "y" } else { "ies" },
        );
        1
    }
}
