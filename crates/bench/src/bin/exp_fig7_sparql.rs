//! Figure 7: answering a SPARQL query end-to-end with the HaLk executor.
//!
//! A SPARQL query exercising all five operators is parsed, mapped by the
//! Adaptor onto a computation tree, and executed three ways: the exact
//! engine (ground truth), trained HaLk (ranked candidates), and the GFinder
//! matcher — demonstrating the executor integration of §IV-F.
//!
//! Run with `cargo run --release -p halk-bench --bin exp_fig7_sparql`.

use halk_bench::{save_json, RunObs, Scale};
use halk_core::{train_model, HalkModel};
use halk_kg::Dataset;
use halk_logic::{answers, Structure};
use halk_matching::Matcher;
use halk_sparql::sparql_to_query;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde_json::json;

fn main() {
    let mut obs = RunObs::init("fig7_sparql");
    let scale = Scale::from_env();
    obs.scale(&scale);
    eprintln!(
        "Fig. 7 (SPARQL executor, FB237) at scale '{}'",
        scale.name()
    );
    let fb237 = Dataset::standard_suite(&mut StdRng::seed_from_u64(scale.seed))
        .into_iter()
        .find(|d| d.name == "FB237")
        .expect("FB237 in the standard suite");
    let graph = &fb237.split.test;

    // Ground the SPARQL text in actual graph edges so it has answers:
    // pick a chain m -rb-> v and an extra edge h2 -r2-> v.
    let t = graph.triples()[10];
    let (m, rb, _v) = (t.h, t.r, t.t);
    let t2 = graph
        .triples()
        .iter()
        .find(|x| x.t == m && (x.h, x.r) != (m, rb))
        .copied()
        .unwrap_or(graph.triples()[0]);
    let sparql = format!(
        "SELECT ?x WHERE {{
            e:{a} r:{r1} ?d .
            ?d r:{r2} ?x .
            MINUS {{ e:{a} r:{r2} ?x . }}
         }}",
        a = t2.h.0,
        r1 = t2.r.0,
        r2 = rb.0,
    );
    println!("SPARQL query:\n{sparql}\n");

    let query = sparql_to_query(&sparql).expect("adaptor maps the query");
    println!("Adaptor output (computation tree): {}\n", query.render());

    // Exact engine.
    let truth = answers(&query, graph);
    println!(
        "Exact engine: {} answers: {:?}",
        truth.len(),
        truth.to_vec().iter().take(10).collect::<Vec<_>>()
    );

    // HaLk executor.
    let mut halk = HalkModel::new(&fb237.split.train, scale.model_config());
    train_model(
        &mut halk,
        &fb237.split.train,
        &Structure::training(),
        &scale.train_config(),
    )
    .expect("training failed");
    let scores = halk.score_all(&query);
    let mut idx: Vec<u32> = (0..scores.len() as u32).collect();
    idx.sort_by(|&a, &b| {
        scores[a as usize]
            .partial_cmp(&scores[b as usize])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let top: Vec<u32> = idx.into_iter().take(10).collect();
    println!("HaLk executor top-10: {top:?}");
    let hits = top
        .iter()
        .filter(|&&e| truth.contains(halk_kg::EntityId(e)))
        .count();
    println!("  ({hits}/10 are exact answers)");

    // GFinder executor.
    let matched = Matcher::new(&fb237.split.train).answer_entities(&query);
    println!(
        "GFinder executor: {} candidates, first 10: {:?}",
        matched.len(),
        matched.iter().take(10).map(|e| e.0).collect::<Vec<_>>()
    );

    if let Some(p) = save_json(
        "fig7_sparql",
        &json!({
            "sparql": sparql,
            "computation_tree": query.render(),
            "exact_answers": truth.to_vec().iter().map(|e| e.0).collect::<Vec<_>>(),
            "halk_top10": top,
            "halk_hits_in_top10": hits,
        }),
    ) {
        eprintln!("results written to {}", p.display());
    }
    obs.finish();
}
