//! Figure 6c: online query time of the four embedding methods and GFinder
//! on the three datasets, over the 6 large structures of §IV-D.
//!
//! Online time for an embedding method = embed the query + score every
//! entity; for GFinder = dynamic index construction + best-effort search
//! (§IV-E: "the time for building the index should be included"). Training
//! quality does not affect these costs, so models are trained with a small
//! fixed budget regardless of `HALK_SCALE`.
//!
//! Run with `cargo run --release -p halk-bench --bin exp_fig6c_online`.

use halk_bench::suite::{standard_datasets, train_suite, ModelKind};
use halk_bench::{save_json, RunObs, Scale, Table};
use halk_logic::{Sampler, Structure};
use halk_matching::Matcher;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde_json::json;
use std::time::Instant;

fn main() {
    let mut obs = RunObs::init("fig6c_online");
    let mut scale = Scale::from_env();
    obs.scale(&scale);
    let queries_per_structure = scale.eval_queries.min(20);
    // Timing only: a short training run produces identically-shaped models.
    scale.steps = scale.steps.min(500);
    eprintln!(
        "Fig. 6c (online time) with {} queries/structure",
        queries_per_structure
    );

    let mut table = Table::new(
        "Fig. 6c — online time per query (ms)",
        &["FB15k", "FB237", "NELL"],
    )
    .precision(3);
    let mut per_method: std::collections::BTreeMap<String, Vec<Option<f64>>> = Default::default();

    let mut json_rows = Vec::new();
    for dataset in standard_datasets(&scale) {
        eprintln!("dataset {}:", dataset.name);
        let suite = train_suite(&dataset.split, &scale, &ModelKind::all());
        let sampler = Sampler::new(&dataset.split.test);
        let mut rng = StdRng::seed_from_u64(scale.seed ^ 0x6C);
        // One shared pool of queries so every method times the same work.
        let mut pool = Vec::new();
        for s in Structure::pruning6() {
            pool.extend(sampler.sample_many(s, queries_per_structure, &mut rng));
        }
        eprintln!("  timing over {} queries", pool.len());

        for trained in &suite {
            let t0 = Instant::now();
            for gq in &pool {
                // ConE/MLPMix skip difference structures, as in the paper.
                if trained.model.supports(gq.structure) {
                    std::hint::black_box(trained.model.score_all(&gq.query));
                }
            }
            let supported = pool
                .iter()
                .filter(|g| trained.model.supports(g.structure))
                .count()
                .max(1);
            let ms = t0.elapsed().as_secs_f64() * 1e3 / supported as f64;
            per_method
                .entry(trained.name().to_string())
                .or_default()
                .push(Some(ms));
            json_rows.push(json!({
                "dataset": dataset.name, "method": trained.name(), "ms_per_query": ms,
            }));
        }

        // GFinder on the same pool.
        let matcher = Matcher::new(&dataset.split.train);
        let t0 = Instant::now();
        for gq in &pool {
            std::hint::black_box(matcher.answer(&gq.query));
        }
        let ms = t0.elapsed().as_secs_f64() * 1e3 / pool.len().max(1) as f64;
        per_method
            .entry("GFinder".to_string())
            .or_default()
            .push(Some(ms));
        json_rows.push(json!({
            "dataset": dataset.name, "method": "GFinder", "ms_per_query": ms,
        }));
    }

    for (name, cells) in per_method {
        table.push_row(name, cells);
    }
    table.print();
    if let Some(p) = save_json("fig6c_online", &json!({ "rows": json_rows })) {
        eprintln!("results written to {}", p.display());
    }
    obs.finish();
}
