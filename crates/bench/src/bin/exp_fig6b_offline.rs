//! Figure 6b: offline (training) time of NewLook / ConE / MLPMix / HaLk on
//! the three datasets, under identical step budgets.
//!
//! The paper's observation: the non-geometric MLPMix costs the most; the
//! geometric methods are comparable; HaLk takes slightly longer than the
//! four-operator baselines because it trains a fifth operator.
//!
//! Run with `cargo run --release -p halk-bench --bin exp_fig6b_offline`.

use halk_bench::suite::{standard_datasets, train_suite, ModelKind};
use halk_bench::{save_json, RunObs, Scale, Table};
use serde_json::json;

fn main() {
    let mut obs = RunObs::init("fig6b_offline");
    let scale = Scale::from_env();
    obs.scale(&scale);
    eprintln!(
        "Fig. 6b (offline time) at scale '{}' ({} steps each)",
        scale.name(),
        scale.steps
    );
    let mut table = Table::new(
        "Fig. 6b — offline training time (s)",
        &["FB15k", "FB237", "NELL"],
    )
    .precision(1);
    let mut per_model: std::collections::BTreeMap<&'static str, Vec<Option<f64>>> =
        Default::default();

    let mut json_rows = Vec::new();
    for dataset in standard_datasets(&scale) {
        eprintln!("dataset {}:", dataset.name);
        let suite = train_suite(&dataset.split, &scale, &ModelKind::all());
        for trained in &suite {
            let secs = trained.offline_time().as_secs_f64();
            per_model
                .entry(trained.name())
                .or_default()
                .push(Some(secs));
            json_rows.push(json!({
                "dataset": dataset.name,
                "model": trained.name(),
                "seconds": secs,
                "tail_loss": trained.stats.tail_loss(),
            }));
        }
    }
    for (name, cells) in per_model {
        table.push_row(name, cells);
    }
    table.print();
    if let Some(p) = save_json(
        "fig6b_offline",
        &json!({ "scale": scale.name(), "rows": json_rows }),
    ) {
        eprintln!("results written to {}", p.display());
    }
    obs.finish();
}
