//! Design-choice ablation (this reproduction's own, beyond Table V): the
//! two readings of Eq. 16's outside distance.
//!
//! * **LiteralEq16** — `d_o` is the smaller endpoint chord everywhere (the
//!   formula as printed; point arcs degenerate to RotatE).
//! * **ZeroedInside** — `d_o = 0` anywhere on the arc (the ConE-style
//!   reading we first implemented).
//!
//! DESIGN.md §6 and EXPERIMENTS.md document why the literal reading is the
//! default: under zeroed-inside the cheapest way to satisfy positives is to
//! inflate arcs, which destroys the embedding structure generalization
//! depends on. This binary regenerates that comparison.
//!
//! Run with `cargo run --release -p halk-bench --bin exp_ablation_distance`.

use halk_bench::{save_json, truncated_structures, RunObs, Scale, Table};
use halk_core::eval::evaluate_table;
use halk_core::{train_model, DistanceMode, HalkModel};
use halk_kg::Dataset;
use halk_logic::Structure;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde_json::json;

fn main() {
    let mut obs = RunObs::init("ablation_distance");
    let scale = Scale::from_env();
    obs.scale(&scale);
    eprintln!(
        "Distance-mode ablation (FB237) at scale '{}' ({} steps)",
        scale.name(),
        scale.steps
    );
    let fb237 = Dataset::standard_suite(&mut StdRng::seed_from_u64(scale.seed))
        .into_iter()
        .find(|d| d.name == "FB237")
        .expect("FB237 in the standard suite");

    let structures = [Structure::P1, Structure::P2, Structure::I2, Structure::D2];
    let cols: Vec<&str> = structures.iter().map(|s| s.name()).collect();
    let mut mrr = Table::new("Eq. 16 reading ablation (MRR %)", &cols).percentages();
    let mut mean_len =
        Table::new("Mean learned arc length (rad, of 2π≈6.28)", &["1p arcs"]).precision(2);

    let mut json_rows = Vec::new();
    for (label, mode) in [
        ("CenterAnchored", DistanceMode::CenterAnchored),
        ("LiteralEq16", DistanceMode::LiteralEq16),
        ("ZeroedInside", DistanceMode::ZeroedInside),
    ] {
        let cfg = scale.model_config().with_distance(mode);
        let mut model = HalkModel::new(&fb237.split.train, cfg);
        let stats = train_model(
            &mut model,
            &fb237.split.train,
            &Structure::training(),
            &scale.train_config(),
        )
        .expect("training failed");
        eprintln!(
            "  trained {label} in {:.1?} (tail loss {:.3})",
            stats.wall,
            stats.tail_loss()
        );

        let row = evaluate_table(
            &model,
            &fb237.split,
            &structures,
            scale.eval_queries,
            scale.seed ^ 0xD1,
        );
        let cells: Vec<Option<f64>> = row.iter().map(|(_, c)| c.map(|c| c.metrics.mrr)).collect();
        mrr.push_row(label, cells.clone());

        // Diagnostic: how wide do 1p arcs end up under each reading?
        let sampler = halk_logic::Sampler::new(&fb237.split.train);
        let mut rng = StdRng::seed_from_u64(scale.seed ^ 0xD2);
        let mut total = 0.0f64;
        let mut n = 0usize;
        for gq in sampler.sample_many(Structure::P1, 20, &mut rng) {
            for arc in &model.embed_query(&gq.query)[0] {
                total += arc.len as f64;
                n += 1;
            }
        }
        let avg_len = total / n.max(1) as f64;
        mean_len.push_row(label, vec![Some(avg_len)]);
        json_rows.push(json!({
            "mode": label,
            "mrr": cells,
            "mean_1p_arc_len": avg_len,
            "tail_loss": stats.tail_loss(),
            "truncated": truncated_structures(&row),
        }));
    }
    mrr.print();
    mean_len.print();
    if let Some(p) = save_json(
        "ablation_distance",
        &json!({ "scale": scale.name(), "rows": json_rows }),
    ) {
        eprintln!("results written to {}", p.display());
    }
    obs.finish();
}
