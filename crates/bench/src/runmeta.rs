//! Per-run observability wiring shared by every experiment binary and the
//! CLI: trace/metrics flag parsing, hook installation, and the run
//! manifest.
//!
//! Each `exp_*` binary starts with [`RunObs::init`] and ends with
//! [`RunObs::finish`]; in between it records config, phase timings and
//! final metrics. `finish` writes `results/<run>/manifest.json` (schema in
//! DESIGN.md §11), a metrics snapshot next to it (or at `--metrics-out`),
//! and flushes the trace file.
//!
//! Flags recognized from the command line (both `--flag value` and
//! `--flag=value` forms):
//!
//! - `--trace <path>` — enable JSONL span tracing (same as `HALK_TRACE`);
//! - `--metrics-out <path>` — metrics snapshot destination (`.prom` for
//!   Prometheus exposition text, anything else for JSON).

use halk_obs::Manifest;
use std::path::PathBuf;
use std::time::Instant;

/// Scans argv for `--name value` / `--name=value`.
fn arg_value(name: &str) -> Option<String> {
    let flag = format!("--{name}");
    let prefix = format!("--{name}=");
    let args: Vec<String> = std::env::args().collect();
    for (i, a) in args.iter().enumerate() {
        if let Some(v) = a.strip_prefix(&prefix) {
            return Some(v.to_string());
        }
        if a == &flag {
            return args.get(i + 1).cloned();
        }
    }
    None
}

/// One run's observability context: manifest builder plus output routing.
pub struct RunObs {
    manifest: Manifest,
    metrics_out: Option<PathBuf>,
}

impl RunObs {
    /// Initializes observability for run `run`: honors `HALK_TRACE` and the
    /// `--trace` flag, installs the pool-stats hooks, and stamps the
    /// manifest with the thread count (git revision and start time are
    /// stamped by [`Manifest::new`]).
    pub fn init(run: &str) -> RunObs {
        halk_core::obs::install();
        halk_obs::trace::init_from_env();
        if let Some(path) = arg_value("trace") {
            if let Err(e) = halk_obs::trace::init_trace(&path) {
                halk_obs::log!(Error, "cannot open trace file {path}: {e}");
            }
        }
        let mut manifest = Manifest::new(run);
        manifest.set_int("threads", halk_par::auto_threads() as u64);
        RunObs {
            manifest,
            metrics_out: arg_value("metrics-out").map(PathBuf::from),
        }
    }

    /// Records the experiment scale in the manifest's config section.
    pub fn scale(&mut self, scale: &crate::Scale) {
        self.manifest.config_str("scale", scale.name());
        self.manifest.config_int("dim", scale.dim as u64);
        self.manifest.config_int("steps", scale.steps as u64);
        self.manifest
            .config_int("eval_queries", scale.eval_queries as u64);
        self.manifest.set_int("seed", scale.seed);
    }

    /// Mutable access to the manifest for custom fields.
    pub fn manifest(&mut self) -> &mut Manifest {
        &mut self.manifest
    }

    /// Runs `f` as the named phase: traced as a span, timed into the
    /// manifest's `phases` map (accumulating across repeated names).
    pub fn phase<T>(&mut self, name: &str, f: impl FnOnce() -> T) -> T {
        let _span = halk_obs::span!("phase", || name.to_string());
        let start = Instant::now();
        let out = f();
        self.manifest.phase(name, start.elapsed());
        out
    }

    /// Records a final metric.
    pub fn metric(&mut self, name: &str, v: f64) {
        self.manifest.metric(name, v);
    }

    /// Writes the manifest and metrics snapshot, flushes the trace, and
    /// reports the paths. The snapshot lands at `--metrics-out` when given,
    /// else next to the manifest as `metrics.json`.
    pub fn finish(self) {
        let run = self.manifest.run().to_string();
        let snapshot = self
            .metrics_out
            .unwrap_or_else(|| PathBuf::from("results").join(&run).join("metrics.json"));
        if let Err(e) = halk_obs::metrics::write_snapshot(&snapshot) {
            halk_obs::log!(Error, "cannot write metrics snapshot: {e}");
        } else {
            eprintln!("metrics snapshot written to {}", snapshot.display());
        }
        match self.manifest.write() {
            Ok(p) => eprintln!("manifest written to {}", p.display()),
            Err(e) => halk_obs::log!(Error, "cannot write manifest for {run}: {e}"),
        }
        halk_obs::trace::flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn phase_accumulates_and_metrics_land_in_manifest() {
        let mut obs = RunObs {
            manifest: Manifest::new("runmeta_test"),
            metrics_out: None,
        };
        let x = obs.phase("work", || 21 * 2);
        assert_eq!(x, 42);
        obs.phase("work", || {
            std::thread::sleep(std::time::Duration::from_millis(1))
        });
        obs.metric("answer", 42.0);
        let js = obs.manifest.to_json();
        let v: serde_json::Value = serde_json::from_str(&js).unwrap();
        assert!(v["phases"]["work"].as_f64().unwrap() > 0.0);
        assert_eq!(v["metrics"]["answer"], 42.0);
    }
}
