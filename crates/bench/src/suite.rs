//! Timed training of the four-model suite under one protocol.

use crate::scale::Scale;
use halk_baselines::{ConeModel, MlpMixModel, NewLookModel};
use halk_core::{train_model, HalkModel, QueryModel, TrainStats};
use halk_kg::split::DatasetSplit;
use halk_logic::Structure;
use std::time::Duration;

/// The three benchmark datasets at the harness's seed (FB15k / FB237 /
/// NELL stand-ins, DESIGN.md §4).
pub fn standard_datasets(scale: &Scale) -> Vec<halk_kg::Dataset> {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    halk_kg::Dataset::standard_suite(&mut StdRng::seed_from_u64(scale.seed))
}

/// A trained model plus its offline cost (Fig. 6b's quantity).
pub struct TrainedModel {
    /// The model behind the shared trait (`Sync` so the sharded parallel
    /// evaluation can share it across pool workers).
    pub model: Box<dyn QueryModel + Send + Sync>,
    /// Training statistics (wall-clock = offline time).
    pub stats: TrainStats,
}

impl TrainedModel {
    /// The model's display name.
    pub fn name(&self) -> &'static str {
        self.model.name()
    }

    /// Offline (training) wall-clock time.
    pub fn offline_time(&self) -> Duration {
        self.stats.wall
    }
}

/// Which models to train.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ModelKind {
    /// The paper's contribution.
    Halk,
    /// ConE baseline.
    Cone,
    /// NewLook baseline.
    NewLook,
    /// MLPMix baseline.
    MlpMix,
}

impl ModelKind {
    /// The four-model suite of Tables I–II / Fig. 6.
    pub fn all() -> Vec<ModelKind> {
        vec![
            ModelKind::Cone,
            ModelKind::NewLook,
            ModelKind::MlpMix,
            ModelKind::Halk,
        ]
    }

    /// The negation-capable trio of Tables III–IV.
    pub fn negation_capable() -> Vec<ModelKind> {
        vec![ModelKind::Cone, ModelKind::MlpMix, ModelKind::Halk]
    }

    fn build(self, split: &DatasetSplit, scale: &Scale) -> Box<dyn QueryModel + Send + Sync> {
        let cfg = scale.model_config();
        match self {
            ModelKind::Halk => Box::new(HalkModel::new(&split.train, cfg)),
            ModelKind::Cone => Box::new(ConeModel::new(&split.train, cfg)),
            ModelKind::NewLook => Box::new(NewLookModel::new(&split.train, cfg)),
            ModelKind::MlpMix => Box::new(MlpMixModel::new(&split.train, cfg)),
        }
    }
}

/// Trains the requested models on one dataset with identical budgets
/// (the paper's protocol). Each model trains on the training structures its
/// operator set supports — exactly as the original systems do.
pub fn train_suite(split: &DatasetSplit, scale: &Scale, kinds: &[ModelKind]) -> Vec<TrainedModel> {
    let structures = Structure::training();
    kinds
        .iter()
        .map(|&k| {
            let mut model = k.build(split, scale);
            let stats = train_model(
                model.as_mut(),
                &split.train,
                &structures,
                &scale.train_config(),
            )
            .expect("training failed");
            eprintln!(
                "  trained {:8} in {:6.1?} (tail loss {:.3})",
                model.name(),
                stats.wall,
                stats.tail_loss()
            );
            TrainedModel { model, stats }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scale::{Preset, Scale};
    use halk_kg::{generate, SynthConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn smoke_suite_trains_all_four() {
        let mut rng = StdRng::seed_from_u64(1);
        let full = generate(&SynthConfig::fb237_like(), &mut rng);
        let split = DatasetSplit::nested(&full, 0.8, 0.1, &mut rng);
        let scale = Scale::from_preset(Preset::Smoke);
        let suite = train_suite(&split, &scale, &ModelKind::all());
        assert_eq!(suite.len(), 4);
        let names: Vec<_> = suite.iter().map(|t| t.name()).collect();
        assert_eq!(names, vec!["ConE", "NewLook", "MLPMix", "HaLk"]);
        for t in &suite {
            assert!(t.offline_time() > Duration::ZERO);
            assert!(t.stats.tail_loss().is_finite());
        }
        // Support-dependent training structures.
        let by_name = |n: &str| suite.iter().find(|t| t.name() == n).unwrap();
        assert!(by_name("ConE")
            .stats
            .trained_structures
            .iter()
            .all(|s| !s.has_difference()));
        assert!(by_name("NewLook")
            .stats
            .trained_structures
            .iter()
            .all(|s| !s.has_negation()));
    }
}
