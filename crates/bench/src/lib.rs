//! Experiment harness for the HaLk reproduction.
//!
//! One binary per table/figure of the paper's evaluation section lives in
//! `src/bin/` (see DESIGN.md §2 for the full index); this library holds the
//! shared machinery: scaled experiment presets, dataset construction, timed
//! training of all four models under one protocol, table rendering and JSON
//! result persistence.
//!
//! Scale is controlled by the `HALK_SCALE` environment variable
//! (`smoke` | `quick` | `standard` | `full`) or per-binary `--scale` flag;
//! `HALK_STEPS` overrides the training budget directly. Absolute numbers
//! grow with budget; the paper-shape comparisons hold from `quick` up
//! (EXPERIMENTS.md records which preset produced the reported runs).

pub mod report;
pub mod runmeta;
pub mod scale;
pub mod suite;
pub mod trace_check;

pub use report::{save_json, truncated_structures, Table};
pub use runmeta::RunObs;
pub use scale::Scale;
pub use suite::{train_suite, TrainedModel};
