//! Criterion benchmark: the matcher with and without HaLk candidate pruning
//! (the latency half of Fig. 6a, isolated from accuracy measurement).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use halk_core::prune::{candidate_set, induced_graph};
use halk_core::{HalkConfig, HalkModel};
use halk_kg::{generate, SynthConfig};
use halk_logic::{Sampler, Structure};
use halk_matching::Matcher;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_pruned_vs_unpruned(c: &mut Criterion) {
    let g = generate(&SynthConfig::nell_like(), &mut StdRng::seed_from_u64(1));
    let model = HalkModel::new(&g, HalkConfig::default());
    let sampler = Sampler::new(&g);
    let mut rng = StdRng::seed_from_u64(2);

    let mut group = c.benchmark_group("pruning");
    for s in [Structure::Ipp2, Structure::Ipp3] {
        let gq = sampler.sample(s, &mut rng).expect("groundable");

        group.bench_with_input(BenchmarkId::new("unpruned", s.name()), &gq, |b, gq| {
            let matcher = Matcher::new(&g);
            b.iter(|| matcher.answer(&gq.query));
        });
        group.bench_with_input(BenchmarkId::new("pruned", s.name()), &gq, |b, gq| {
            // Full pruned pipeline: candidate scoring + induced graph +
            // matching — the honest "after" cost of §IV-D.
            b.iter(|| {
                let cands = candidate_set(&model, &gq.query, 20);
                let small = induced_graph(&g, &cands);
                Matcher::new(&small).answer(&gq.query)
            });
        });
        group.bench_with_input(
            BenchmarkId::new("match_only_pruned", s.name()),
            &gq,
            |b, gq| {
                // Matching cost alone once the induced graph exists.
                let cands = candidate_set(&model, &gq.query, 20);
                let small = induced_graph(&g, &cands);
                let matcher = Matcher::new(&small);
                b.iter(|| matcher.answer(&gq.query));
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_pruned_vs_unpruned
}
criterion_main!(benches);
