//! Criterion benchmark: online answering latency — embedding executor vs
//! exact engine vs subgraph matcher, by query size (the latency side of
//! Fig. 6c and Table VI).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use halk_core::{HalkConfig, HalkModel};
use halk_kg::{generate, SynthConfig};
use halk_logic::{answers, Sampler, Structure};
use halk_matching::Matcher;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_engines_by_query_size(c: &mut Criterion) {
    let g = generate(&SynthConfig::nell_like(), &mut StdRng::seed_from_u64(1));
    let model = HalkModel::new(&g, HalkConfig::default());
    let sampler = Sampler::new(&g);
    let mut rng = StdRng::seed_from_u64(2);

    let mut group = c.benchmark_group("online_by_size");
    for (size, s) in Structure::scalability_ladder() {
        let gq = sampler.sample(s, &mut rng).expect("groundable");

        group.bench_with_input(
            BenchmarkId::new("halk", format!("qs{size}_{}", s.name())),
            &gq,
            |b, gq| b.iter(|| model.score_all(&gq.query)),
        );
        group.bench_with_input(
            BenchmarkId::new("exact", format!("qs{size}_{}", s.name())),
            &gq,
            |b, gq| b.iter(|| answers(&gq.query, &g)),
        );
        let matcher = Matcher::new(&g);
        group.bench_with_input(
            BenchmarkId::new("gfinder", format!("qs{size}_{}", s.name())),
            &gq,
            |b, gq| b.iter(|| matcher.answer(&gq.query)),
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_engines_by_query_size
}
criterion_main!(benches);
