//! Criterion benchmark: substrate throughput — KG store lookups, exact
//! answer evaluation, query sampling, and autodiff tape steps. These bound
//! everything the experiments measure.

use criterion::{criterion_group, criterion_main, Criterion};
use halk_kg::{generate, EntityId, RelationId, SynthConfig};
use halk_logic::{answers, Sampler, Structure};
use halk_nn::{Act, Mlp, ParamStore, Tape, Tensor};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn bench_graph_lookups(c: &mut Criterion) {
    let g = generate(&SynthConfig::fb15k_like(), &mut StdRng::seed_from_u64(1));
    let mut rng = StdRng::seed_from_u64(2);
    let probes: Vec<(EntityId, RelationId)> = (0..1024)
        .map(|_| {
            (
                EntityId(rng.gen_range(0..g.n_entities() as u32)),
                RelationId(rng.gen_range(0..g.n_relations() as u32)),
            )
        })
        .collect();
    c.bench_function("graph_neighbors_1k", |b| {
        b.iter(|| {
            probes
                .iter()
                .map(|&(e, r)| g.neighbors(e, r).len())
                .sum::<usize>()
        })
    });
}

fn bench_exact_answers(c: &mut Criterion) {
    let g = generate(&SynthConfig::fb237_like(), &mut StdRng::seed_from_u64(3));
    let sampler = Sampler::new(&g);
    let mut rng = StdRng::seed_from_u64(4);
    let q = sampler
        .sample(Structure::P3ip, &mut rng)
        .expect("groundable")
        .query;
    c.bench_function("exact_answers_p3ip", |b| b.iter(|| answers(&q, &g)));
}

fn bench_sampler(c: &mut Criterion) {
    let g = generate(&SynthConfig::nell_like(), &mut StdRng::seed_from_u64(5));
    c.bench_function("sample_pi_query", |b| {
        let sampler = Sampler::new(&g);
        let mut rng = StdRng::seed_from_u64(6);
        b.iter(|| sampler.sample(Structure::Pi, &mut rng))
    });
}

fn bench_tape_mlp_step(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(7);
    let mut store = ParamStore::new();
    let mlp = Mlp::new(&mut store, 64, 64, 32, 1, Act::Relu, &mut rng);
    let x = Tensor::full(64, 64, 0.1);
    c.bench_function("tape_mlp_fwd_bwd_64x64", |b| {
        b.iter(|| {
            let mut tape = Tape::new();
            let xv = tape.input(x.clone());
            let y = mlp.forward(&mut tape, &store, xv);
            let sq = tape.mul(y, y);
            let loss = tape.mean_all(sq);
            store.zero_grads();
            tape.backward(loss, &mut store);
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_graph_lookups, bench_exact_answers, bench_sampler, bench_tape_mlp_step
}
criterion_main!(benches);
