//! Criterion micro-benchmarks: forward+backward latency of each HaLk
//! operator (the per-operator costs behind the complexity analysis of
//! §III-H and the offline-time comparison of Fig. 6b).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use halk_core::{HalkConfig, HalkModel, QueryModel, TrainExample};
use halk_kg::{generate, Graph, SynthConfig};
use halk_logic::{answers, Sampler, Structure};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn setup() -> (Graph, HalkModel) {
    let g = generate(&SynthConfig::fb237_like(), &mut StdRng::seed_from_u64(1));
    let model = HalkModel::new(&g, HalkConfig::default());
    (g, model)
}

fn batch_for(g: &Graph, s: Structure, n: usize) -> Vec<TrainExample> {
    let sampler = Sampler::new(g);
    let mut rng = StdRng::seed_from_u64(2);
    sampler
        .sample_many(s, n, &mut rng)
        .into_iter()
        .map(|gq| {
            let ans = answers(&gq.query, g);
            let positive = ans.iter().next().expect("non-empty");
            let negatives = sampler.negatives(&ans, 16, &mut rng);
            TrainExample {
                positive,
                negatives,
                query: gq.query,
            }
        })
        .collect()
}

/// One optimizer step (embed + loss + backward + Adam) per operator family.
fn bench_operator_steps(c: &mut Criterion) {
    let (g, _) = setup();
    let mut group = c.benchmark_group("train_step");
    for s in [
        Structure::P1,  // projection
        Structure::P3,  // 3-hop projection chain
        Structure::I3,  // intersection
        Structure::D3,  // difference
        Structure::In2, // negation
    ] {
        let batch = batch_for(&g, s, 32);
        if batch.is_empty() {
            continue;
        }
        group.bench_with_input(BenchmarkId::from_parameter(s.name()), &batch, |b, batch| {
            // Fresh model: realistic (untrained) parameter state.
            let mut model = HalkModel::new(&g, HalkConfig::default());
            b.iter(|| model.train_batch(batch));
        });
    }
    group.finish();
}

/// Online scoring latency per structure (the quantity of Fig. 6c/Table VI).
fn bench_score_all(c: &mut Criterion) {
    let (g, model) = setup();
    let sampler = Sampler::new(&g);
    let mut rng = StdRng::seed_from_u64(3);
    let mut group = c.benchmark_group("score_all");
    for s in [Structure::P1, Structure::Pi, Structure::P3ip, Structure::Up] {
        let gq = sampler.sample(s, &mut rng).expect("groundable");
        group.bench_with_input(BenchmarkId::from_parameter(s.name()), &gq, |b, gq| {
            b.iter(|| model.score_all(&gq.query));
        });
    }
    group.finish();
}

/// Vectorized `ArcScorer` kernel vs the retained scalar reference, on the
/// same union query (the 2× ISSUE acceptance gate, in Criterion form), plus
/// the amortized shape with entity trig hoisted out of the loop.
fn bench_scorer_vs_scalar(c: &mut Criterion) {
    let (g, model) = setup();
    let sampler = Sampler::new(&g);
    let mut rng = StdRng::seed_from_u64(3);
    let gq = sampler.sample(Structure::Up, &mut rng).expect("groundable");
    let mut group = c.benchmark_group("score_all_kernel");
    group.bench_function("vectorized", |b| b.iter(|| model.score_all(&gq.query)));
    group.bench_function("scalar", |b| b.iter(|| model.score_all_scalar(&gq.query)));
    group.bench_function("vectorized_cached_trig", |b| {
        let trig = model.entity_trig();
        let mut scores = Vec::new();
        b.iter(|| model.score_all_with(&trig, &gq.query, &mut scores));
    });
    group.finish();
}

/// The dense inner loop with and without the old `a == 0.0` skip. The skip
/// looked like an optimization but costs a branch per multiply on dense
/// data — this group documents the delta that justified removing it from
/// `Tensor::matmul`.
fn bench_matmul_branchless(c: &mut Criterion) {
    let mut rng = StdRng::seed_from_u64(6);
    let n = 128;
    let a = halk_nn::init::uniform(n, n, -1.0, 1.0, &mut rng);
    let b_ten = halk_nn::init::uniform(n, n, -1.0, 1.0, &mut rng);
    let mut group = c.benchmark_group("matmul_128");
    group.bench_function("branchless", |b| b.iter(|| a.matmul(&b_ten)));
    group.bench_function("zero_skip_reference", |b| {
        // The pre-change loop, kept here verbatim as the comparison baseline.
        b.iter(|| {
            let (m, k, n2) = (n, n, n);
            let mut out = vec![0.0f32; m * n2];
            for i in 0..m {
                for p in 0..k {
                    let av = a.data[i * k + p];
                    if av == 0.0 {
                        continue;
                    }
                    for j in 0..n2 {
                        out[i * n2 + j] += av * b_ten.data[p * n2 + j];
                    }
                }
            }
            out
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_operator_steps, bench_score_all, bench_scorer_vs_scalar, bench_matmul_branchless
}
criterion_main!(benches);
