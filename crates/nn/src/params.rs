//! Parameter storage and optimizers.
//!
//! All trainable state — embedding tables and layer weights alike — lives in
//! one [`ParamStore`]. The autodiff tape reads parameter values at
//! graph-construction time and scatters gradients back here; the optimizer
//! then walks the store once per step. Keeping parameters out of the tape
//! means tapes are cheap, short-lived objects rebuilt every batch
//! (define-by-run), while the store persists for the whole training run.

use crate::tensor::Tensor;
use serde::{Deserialize, Serialize};

/// Opaque handle to one parameter tensor inside a [`ParamStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParamId(pub(crate) usize);

// (field stays crate-private: ids are only minted by a ParamStore)

impl ParamId {
    /// Index of the parameter inside its store (stable for the store's life).
    pub fn index(&self) -> usize {
        self.0
    }
}

/// Anything the backward pass can scatter gradients into. [`ParamStore`]
/// implements it for the classic single-threaded path; [`GradBuffer`]
/// implements it as a worker-private staging area for data-parallel
/// training, where per-shard buffers are reduced into the store in a fixed
/// shard order afterwards (the determinism argument of DESIGN.md §9).
pub trait GradSink {
    /// Accumulates `g` into the gradient of `id`.
    fn accumulate(&mut self, id: ParamId, g: &Tensor);

    /// Accumulates `g_row` into row `row` of the gradient of `id` (sparse
    /// scatter for embedding lookups).
    fn accumulate_row(&mut self, id: ParamId, row: usize, g_row: &[f32]);
}

impl GradSink for ParamStore {
    fn accumulate(&mut self, id: ParamId, g: &Tensor) {
        self.accumulate_grad(id, g);
    }

    fn accumulate_row(&mut self, id: ParamId, row: usize, g_row: &[f32]) {
        self.accumulate_grad_row(id, row, g_row);
    }
}

/// A standalone gradient accumulator shaped like a [`ParamStore`]'s
/// parameters, with no values, moments or optimizer state. One lives on
/// each training shard: the shard's backward pass scatters into it, and
/// [`GradBuffer::add_into`] later reduces it into the real store. Reusing
/// a buffer across steps ([`GradBuffer::reset_for`]) recycles its
/// allocations, mirroring the tape's buffer pool.
#[derive(Debug, Default)]
pub struct GradBuffer {
    grads: Vec<Tensor>,
}

impl GradBuffer {
    /// An empty buffer; call [`GradBuffer::reset_for`] before use.
    pub fn new() -> Self {
        Self::default()
    }

    /// Matches the buffer to `store`'s parameter shapes and zero-fills it,
    /// reusing existing allocations where shapes already agree.
    pub fn reset_for(&mut self, store: &ParamStore) {
        self.grads.truncate(store.len());
        for (i, g) in self.grads.iter_mut().enumerate() {
            let v = store.value(ParamId(i));
            if (g.rows, g.cols) == (v.rows, v.cols) {
                g.fill_zero();
            } else {
                *g = Tensor::zeros(v.rows, v.cols);
            }
        }
        for i in self.grads.len()..store.len() {
            let v = store.value(ParamId(i));
            self.grads.push(Tensor::zeros(v.rows, v.cols));
        }
    }

    /// Adds every accumulated gradient into `store`'s gradient slots.
    ///
    /// # Panics
    /// If the buffer was not [`GradBuffer::reset_for`] this store's shapes.
    pub fn add_into(&self, store: &mut ParamStore) {
        assert_eq!(self.grads.len(), store.len(), "buffer/store shape drift");
        for (i, g) in self.grads.iter().enumerate() {
            store.accumulate_grad(ParamId(i), g);
        }
    }

    /// Read access to one accumulated gradient (tests/diagnostics).
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.grads[id.0]
    }
}

impl GradSink for GradBuffer {
    fn accumulate(&mut self, id: ParamId, g: &Tensor) {
        self.grads[id.0].add_assign(g);
    }

    fn accumulate_row(&mut self, id: ParamId, row: usize, g_row: &[f32]) {
        let grad = &mut self.grads[id.0];
        debug_assert_eq!(g_row.len(), grad.cols);
        let dst = grad.row_mut(row);
        for (d, &g) in dst.iter_mut().zip(g_row) {
            *d += g;
        }
    }
}

/// Owns every trainable tensor plus its gradient accumulator and Adam moment
/// estimates.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ParamStore {
    values: Vec<Tensor>,
    grads: Vec<Tensor>,
    adam_m: Vec<Tensor>,
    adam_v: Vec<Tensor>,
    /// Adam time step (number of optimizer steps taken).
    step: u64,
}

impl ParamStore {
    /// An empty store.
    pub fn new() -> Self {
        Self {
            values: Vec::new(),
            grads: Vec::new(),
            adam_m: Vec::new(),
            adam_v: Vec::new(),
            step: 0,
        }
    }

    /// Registers a tensor as a trainable parameter, returning its handle.
    pub fn add(&mut self, init: Tensor) -> ParamId {
        let id = ParamId(self.values.len());
        self.grads.push(Tensor::zeros(init.rows, init.cols));
        self.adam_m.push(Tensor::zeros(init.rows, init.cols));
        self.adam_v.push(Tensor::zeros(init.rows, init.cols));
        self.values.push(init);
        id
    }

    /// Number of registered parameters (tensors, not scalars).
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// The handle of the `i`-th registered parameter. Ids are assigned
    /// densely in registration order, so every `i < len()` is valid;
    /// serialization sweeps (checkpoints, snapshots) iterate with this.
    pub fn param_id(&self, i: usize) -> ParamId {
        assert!(i < self.values.len(), "param index {i} out of range");
        ParamId(i)
    }

    /// True when no parameters are registered.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Total scalar parameter count across all tensors.
    pub fn num_scalars(&self) -> usize {
        self.values.iter().map(Tensor::len).sum()
    }

    /// Read access to a parameter's current value.
    pub fn value(&self, id: ParamId) -> &Tensor {
        &self.values[id.0]
    }

    /// Mutable access to a parameter's value (used by tests and loaders; the
    /// training path goes through gradients + optimizer steps).
    pub fn value_mut(&mut self, id: ParamId) -> &mut Tensor {
        &mut self.values[id.0]
    }

    /// Read access to a parameter's gradient accumulator.
    pub fn grad(&self, id: ParamId) -> &Tensor {
        &self.grads[id.0]
    }

    /// Accumulates `g` into the gradient of `id`.
    pub fn accumulate_grad(&mut self, id: ParamId, g: &Tensor) {
        self.grads[id.0].add_assign(g);
    }

    /// Accumulates `g_row` into row `row` of the gradient of `id`
    /// (sparse scatter for embedding lookups).
    pub fn accumulate_grad_row(&mut self, id: ParamId, row: usize, g_row: &[f32]) {
        let grad = &mut self.grads[id.0];
        debug_assert_eq!(g_row.len(), grad.cols);
        let dst = grad.row_mut(row);
        for (d, &g) in dst.iter_mut().zip(g_row) {
            *d += g;
        }
    }

    /// Zeroes every gradient accumulator (call once per batch).
    pub fn zero_grads(&mut self) {
        for g in &mut self.grads {
            g.fill_zero();
        }
    }

    /// Global-norm gradient clipping; returns the pre-clip norm.
    pub fn clip_grad_norm(&mut self, max_norm: f32) -> f32 {
        let total: f32 = self
            .grads
            .iter()
            .map(|g| g.data.iter().map(|x| x * x).sum::<f32>())
            .sum::<f32>()
            .sqrt();
        if total > max_norm && total > 0.0 {
            let s = max_norm / total;
            for g in &mut self.grads {
                g.scale_assign(s);
            }
        }
        total
    }

    /// One Adam step (Kingma & Ba 2015 — the optimizer of §IV-A) over every
    /// parameter, consuming the accumulated gradients.
    pub fn adam_step(&mut self, lr: f32) {
        self.adam_step_with(lr, 0.9, 0.999, 1e-8)
    }

    /// Adam with explicit hyper-parameters.
    pub fn adam_step_with(&mut self, lr: f32, beta1: f32, beta2: f32, eps: f32) {
        self.step += 1;
        let t = self.step as f32;
        let bc1 = 1.0 - beta1.powf(t);
        let bc2 = 1.0 - beta2.powf(t);
        for i in 0..self.values.len() {
            let g = &self.grads[i];
            let m = &mut self.adam_m[i];
            let v = &mut self.adam_v[i];
            let p = &mut self.values[i];
            for j in 0..g.data.len() {
                let gj = g.data[j];
                m.data[j] = beta1 * m.data[j] + (1.0 - beta1) * gj;
                v.data[j] = beta2 * v.data[j] + (1.0 - beta2) * gj * gj;
                let mhat = m.data[j] / bc1;
                let vhat = v.data[j] / bc2;
                p.data[j] -= lr * mhat / (vhat.sqrt() + eps);
            }
        }
    }

    /// Plain SGD step (used by gradient-checking tests where Adam's state
    /// would obscure the result).
    pub fn sgd_step(&mut self, lr: f32) {
        for i in 0..self.values.len() {
            let g = self.grads[i].clone();
            self.values[i].add_scaled_assign(&g, -lr);
        }
    }

    /// Number of optimizer steps taken so far.
    pub fn steps_taken(&self) -> u64 {
        self.step
    }

    /// True when every parameter value is finite (no NaN/Inf). Used by the
    /// training loop's divergence guard; gradients and Adam moments are not
    /// inspected because a non-finite moment always poisons the values on
    /// the next step anyway.
    pub fn all_finite(&self) -> bool {
        self.values
            .iter()
            .all(|t| t.data.iter().all(|x| x.is_finite()))
    }

    /// True when `other` registers the same parameters with the same
    /// shapes, in order (a checkpoint of one can restore the other).
    pub fn same_shapes(&self, other: &ParamStore) -> bool {
        self.values.len() == other.values.len()
            && self
                .values
                .iter()
                .zip(&other.values)
                .all(|(a, b)| (a.rows, a.cols) == (b.rows, b.cols))
    }

    /// Views of (value, Adam m, Adam v) for checkpointing.
    pub fn checkpoint_views(&self, id: ParamId) -> (&Tensor, &Tensor, &Tensor) {
        (&self.values[id.0], &self.adam_m[id.0], &self.adam_v[id.0])
    }

    /// Restores Adam moment estimates (checkpoint loading).
    ///
    /// # Panics
    /// If shapes do not match the parameter.
    pub fn restore_adam_state(&mut self, id: ParamId, m: Tensor, v: Tensor) {
        let p = &self.values[id.0];
        assert_eq!((m.rows, m.cols), (p.rows, p.cols), "adam m shape mismatch");
        assert_eq!((v.rows, v.cols), (p.rows, p.cols), "adam v shape mismatch");
        self.adam_m[id.0] = m;
        self.adam_v[id.0] = v;
    }

    /// Restores the optimizer step counter (checkpoint loading).
    pub fn restore_step(&mut self, step: u64) {
        self.step = step;
    }
}

impl Default for ParamStore {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_access() {
        let mut s = ParamStore::new();
        let id = s.add(Tensor::from_vec(1, 2, vec![1.0, 2.0]));
        assert_eq!(s.value(id).data, vec![1.0, 2.0]);
        assert_eq!(s.len(), 1);
        assert_eq!(s.num_scalars(), 2);
        assert!(!s.is_empty());
    }

    #[test]
    fn grad_accumulation_and_zero() {
        let mut s = ParamStore::new();
        let id = s.add(Tensor::zeros(2, 2));
        s.accumulate_grad(id, &Tensor::full(2, 2, 1.0));
        s.accumulate_grad(id, &Tensor::full(2, 2, 0.5));
        assert_eq!(s.grad(id).data, vec![1.5; 4]);
        s.zero_grads();
        assert_eq!(s.grad(id).data, vec![0.0; 4]);
    }

    #[test]
    fn sparse_row_accumulation() {
        let mut s = ParamStore::new();
        let id = s.add(Tensor::zeros(3, 2));
        s.accumulate_grad_row(id, 1, &[1.0, 2.0]);
        s.accumulate_grad_row(id, 1, &[1.0, 0.0]);
        assert_eq!(s.grad(id).row(1), &[2.0, 2.0]);
        assert_eq!(s.grad(id).row(0), &[0.0, 0.0]);
    }

    #[test]
    fn sgd_descends_quadratic() {
        // Minimize f(p) = p² by hand-fed gradient 2p.
        let mut s = ParamStore::new();
        let id = s.add(Tensor::scalar(1.0));
        for _ in 0..100 {
            s.zero_grads();
            let p = s.value(id).item();
            s.accumulate_grad(id, &Tensor::scalar(2.0 * p));
            s.sgd_step(0.1);
        }
        assert!(s.value(id).item().abs() < 1e-3);
    }

    #[test]
    fn adam_descends_quadratic() {
        let mut s = ParamStore::new();
        let id = s.add(Tensor::scalar(5.0));
        for _ in 0..500 {
            s.zero_grads();
            let p = s.value(id).item();
            s.accumulate_grad(id, &Tensor::scalar(2.0 * p));
            s.adam_step(0.05);
        }
        assert!(
            s.value(id).item().abs() < 1e-2,
            "p = {}",
            s.value(id).item()
        );
        assert_eq!(s.steps_taken(), 500);
    }

    #[test]
    fn finiteness_and_shape_checks() {
        let mut s = ParamStore::new();
        let id = s.add(Tensor::from_vec(1, 2, vec![1.0, 2.0]));
        assert!(s.all_finite());
        s.value_mut(id).data[1] = f32::NAN;
        assert!(!s.all_finite());
        s.value_mut(id).data[1] = f32::INFINITY;
        assert!(!s.all_finite());

        let mut t = ParamStore::new();
        t.add(Tensor::zeros(1, 2));
        assert!(s.same_shapes(&t));
        t.add(Tensor::zeros(3, 3));
        assert!(!s.same_shapes(&t));
        let mut u = ParamStore::new();
        u.add(Tensor::zeros(2, 1));
        assert!(!s.same_shapes(&u));
    }

    #[test]
    fn grad_buffer_staging_matches_direct_accumulation_bitwise() {
        let mut s = ParamStore::new();
        let a = s.add(Tensor::from_vec(2, 2, vec![0.1, 0.2, 0.3, 0.4]));
        let b = s.add(Tensor::from_vec(3, 2, vec![0.0; 6]));

        // Direct path: scatter straight into the store.
        s.accumulate_grad(a, &Tensor::from_vec(2, 2, vec![0.7, -1.3, 2.5, 0.01]));
        s.accumulate_grad_row(b, 2, &[1.25, -0.5]);
        s.accumulate_grad_row(b, 2, &[0.125, 3.0]);
        let direct: Vec<Vec<u32>> = [a, b]
            .iter()
            .map(|&id| s.grad(id).data.iter().map(|x| x.to_bits()).collect())
            .collect();

        // Staged path: identical scatters into a GradBuffer, then drained.
        s.zero_grads();
        let mut buf = GradBuffer::new();
        buf.reset_for(&s);
        buf.accumulate(a, &Tensor::from_vec(2, 2, vec![0.7, -1.3, 2.5, 0.01]));
        buf.accumulate_row(b, 2, &[1.25, -0.5]);
        buf.accumulate_row(b, 2, &[0.125, 3.0]);
        buf.add_into(&mut s);
        for (i, &id) in [a, b].iter().enumerate() {
            let staged: Vec<u32> = s.grad(id).data.iter().map(|x| x.to_bits()).collect();
            assert_eq!(staged, direct[i], "param {i} drifted");
        }
    }

    #[test]
    fn grad_buffer_reset_reuses_and_rezeros() {
        let mut s = ParamStore::new();
        let id = s.add(Tensor::zeros(2, 3));
        let mut buf = GradBuffer::new();
        buf.reset_for(&s);
        buf.accumulate(id, &Tensor::full(2, 3, 1.0));
        buf.reset_for(&s);
        assert_eq!(buf.grad(id).data, vec![0.0; 6]);
        // Growing the store re-shapes the buffer on the next reset.
        let id2 = s.add(Tensor::zeros(1, 4));
        buf.reset_for(&s);
        assert_eq!(buf.grad(id2).data, vec![0.0; 4]);
    }

    #[test]
    fn clip_grad_norm_scales_down() {
        let mut s = ParamStore::new();
        let id = s.add(Tensor::zeros(1, 2));
        s.accumulate_grad(id, &Tensor::from_vec(1, 2, vec![3.0, 4.0]));
        let pre = s.clip_grad_norm(1.0);
        assert!((pre - 5.0).abs() < 1e-6);
        assert!((s.grad(id).l2_norm() - 1.0).abs() < 1e-5);
        // Already under the cap: untouched.
        let pre2 = s.clip_grad_norm(10.0);
        assert!((pre2 - 1.0).abs() < 1e-5);
        assert!((s.grad(id).l2_norm() - 1.0).abs() < 1e-5);
    }
}
