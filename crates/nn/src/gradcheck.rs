//! Finite-difference gradient checking.
//!
//! Every op in the tape is verified against central differences in the
//! property tests; this module holds the shared machinery. A model built on
//! a checked tape needs no per-equation gradient derivations — exactly why
//! the substrate exists.

use crate::params::{ParamId, ParamStore};
use crate::tape::{Tape, Var};
use crate::tensor::Tensor;

/// Result of a gradient check: the largest absolute and relative deviation
/// between analytic and numeric gradients across all checked parameters.
#[derive(Debug, Clone, Copy)]
pub struct GradCheckReport {
    /// Largest `|analytic − numeric|`.
    pub max_abs_err: f32,
    /// Largest `|analytic − numeric| / max(1, |analytic|, |numeric|)`.
    pub max_rel_err: f32,
}

/// Checks the analytic gradient of `f` (a scalar-valued tape program over
/// the parameters in `store`) against central finite differences with step
/// `eps`, for every scalar of every parameter in `ids`.
///
/// `f` must be deterministic and must not mutate the store.
pub fn check_gradients(
    store: &mut ParamStore,
    ids: &[ParamId],
    eps: f32,
    f: impl Fn(&mut Tape, &ParamStore) -> Var,
) -> GradCheckReport {
    // Analytic pass.
    store.zero_grads();
    let mut tape = Tape::new();
    let loss = f(&mut tape, store);
    tape.backward(loss, store);
    let analytic: Vec<Tensor> = ids.iter().map(|&id| store.grad(id).clone()).collect();

    let mut report = GradCheckReport {
        max_abs_err: 0.0,
        max_rel_err: 0.0,
    };

    for (k, &id) in ids.iter().enumerate() {
        let n = store.value(id).len();
        for j in 0..n {
            let orig = store.value(id).data[j];

            store.value_mut(id).data[j] = orig + eps;
            let mut t1 = Tape::new();
            let l1 = f(&mut t1, store);
            let up = t1.value(l1).item();

            store.value_mut(id).data[j] = orig - eps;
            let mut t2 = Tape::new();
            let l2 = f(&mut t2, store);
            let down = t2.value(l2).item();

            store.value_mut(id).data[j] = orig;

            let numeric = (up - down) / (2.0 * eps);
            let a = analytic[k].data[j];
            let abs = (a - numeric).abs();
            let rel = abs / 1.0f32.max(a.abs()).max(numeric.abs());
            report.max_abs_err = report.max_abs_err.max(abs);
            report.max_rel_err = report.max_rel_err.max(rel);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Act, Mlp};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn catches_a_correct_gradient() {
        let mut s = ParamStore::new();
        let p = s.add(Tensor::from_vec(1, 3, vec![0.3, -0.7, 1.2]));
        let r = check_gradients(&mut s, &[p], 1e-3, |t, s| {
            let x = t.param(s, p);
            let y = t.tanh(x);
            let z = t.mul(y, y);
            t.mean_all(z)
        });
        assert!(r.max_rel_err < 1e-2, "rel err {}", r.max_rel_err);
    }

    #[test]
    fn full_mlp_gradcheck() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut s = ParamStore::new();
        let m = Mlp::new(&mut s, 3, 5, 2, 1, Act::Tanh, &mut rng);
        let ids: Vec<ParamId> = (0..s.len()).map(crate::params::ParamId).collect();
        let x = Tensor::from_vec(2, 3, vec![0.1, -0.2, 0.5, 0.7, 0.3, -0.9]);
        let r = check_gradients(&mut s, &ids, 1e-3, |t, s| {
            let xv = t.input(x.clone());
            let y = m.forward(t, s, xv);
            let sq = t.mul(y, y);
            t.mean_all(sq)
        });
        assert!(r.max_rel_err < 2e-2, "rel err {}", r.max_rel_err);
    }

    #[test]
    fn gradcheck_covers_gather() {
        let mut s = ParamStore::new();
        let e = s.add(Tensor::from_vec(3, 2, vec![0.5, -0.5, 1.0, 2.0, -1.0, 0.2]));
        let r = check_gradients(&mut s, &[e], 1e-3, |t, s| {
            let rows = t.gather(s, e, &[0, 2, 0]);
            let sv = t.sin(rows);
            t.mean_all(sv)
        });
        assert!(r.max_rel_err < 1e-2, "rel err {}", r.max_rel_err);
    }
}
