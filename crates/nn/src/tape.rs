//! Define-by-run reverse-mode automatic differentiation.
//!
//! A [`Tape`] is rebuilt for every training batch: calling an op method both
//! computes the forward value eagerly and records the op so
//! [`Tape::backward`] can replay the chain rule in reverse. Ops are a closed
//! enum — no boxed closures — so the backward pass is a branch-predictable
//! match loop and the tape is trivially inspectable in tests.
//!
//! Tapes recycle their storage: every forward op draws its output buffer
//! from an internal free-list ([`Tape::reset`] returns all node buffers to
//! it), so a tape reused across training batches or DNF branches reaches a
//! steady state where the hot loop performs no heap allocation. See
//! DESIGN.md §8 for the reuse invariants.
//!
//! Parameters live outside the tape in a [`ParamStore`]; `param`/`gather`
//! snapshot their values at record time and `backward` scatters gradients
//! back, which makes embedding-table lookups sparse (only touched rows
//! receive gradient).

use crate::params::{GradSink, ParamId, ParamStore};
use crate::tensor::Tensor;

/// Handle to a node (an intermediate tensor) on a [`Tape`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Var(usize);

#[derive(Debug, Clone)]
enum Op {
    /// Constant input; no gradient flows past it.
    Input,
    /// A whole parameter tensor.
    Param(ParamId),
    /// Selected rows of a parameter tensor (embedding lookup).
    Gather {
        param: ParamId,
        indices: Vec<u32>,
    },
    Add(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    Div(Var, Var),
    /// `a + row` where `row` broadcasts across the rows of `a`.
    AddRow(Var, Var),
    /// `a * row` with the same broadcast.
    MulRow(Var, Var),
    MatMul(Var, Var),
    Scale(Var, f32),
    AddScalar(Var),
    Sin(Var),
    Cos(Var),
    Tanh(Var),
    Sigmoid(Var),
    Relu(Var),
    Abs(Var),
    Exp(Var),
    /// `ln(1 + e^x)`, the numerically safe building block of the loss.
    Softplus(Var),
    /// `atan2(y, x)` elementwise — the `Reg`-regularized angle restore.
    Atan2(Var, Var),
    ConcatCols(Vec<Var>),
    SliceCols(Var, usize, usize),
    /// Row-wise sum: `B×d → B×1`.
    SumCols(Var),
    /// Mean of all elements: `→ 1×1`.
    MeanAll(Var),
    /// Sum of all elements: `→ 1×1`.
    SumAll(Var),
    Min(Var, Var),
    Max(Var, Var),
}

struct Node {
    data: Tensor,
    op: Op,
}

/// Free-list of `Vec<f32>` allocations recycled across [`Tape::reset`]
/// calls. Buffers come back dirty: every consumer must overwrite (or
/// zero-fill) the full length it claims before reading.
#[derive(Default)]
struct BufferPool {
    free: Vec<Vec<f32>>,
}

impl BufferPool {
    /// An empty buffer with at least `cap` capacity, recycled if possible.
    fn take(&mut self, cap: usize) -> Vec<f32> {
        let mut v = self.free.pop().unwrap_or_default();
        v.clear();
        v.reserve(cap);
        v
    }

    /// Returns a buffer's allocation to the free-list.
    fn put(&mut self, v: Vec<f32>) {
        if v.capacity() > 0 {
            self.free.push(v);
        }
    }
}

/// A reusable autodiff graph. Build it forward with the op methods, call
/// [`Tape::backward`] once on a scalar loss, then [`Tape::reset`] to reuse
/// the tape (and its buffer allocations) for the next batch or branch.
pub struct Tape {
    nodes: Vec<Node>,
    pool: BufferPool,
}

impl Tape {
    /// An empty tape.
    pub fn new() -> Self {
        Self {
            nodes: Vec::new(),
            pool: BufferPool::default(),
        }
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Clears all recorded nodes, returning their buffers to the internal
    /// pool so the next forward pass reuses the allocations. Any `Var`
    /// handles from before the reset are invalidated (using one afterwards
    /// panics or reads an unrelated node — the borrow checker already stops
    /// `value()` references from crossing a reset).
    pub fn reset(&mut self) {
        let pool = &mut self.pool;
        for node in self.nodes.drain(..) {
            pool.put(node.data.data);
        }
    }

    /// Number of free buffers currently pooled (diagnostics/tests).
    pub fn pooled_buffers(&self) -> usize {
        self.pool.free.len()
    }

    /// Drops all pooled buffers, forcing subsequent ops to allocate fresh.
    /// Exists so tests can compare pooled against unpooled execution.
    pub fn clear_pool(&mut self) {
        self.pool.free.clear();
    }

    /// Forward value of a node.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].data
    }

    fn push(&mut self, data: Tensor, op: Op) -> Var {
        self.nodes.push(Node { data, op });
        Var(self.nodes.len() - 1)
    }

    /// Elementwise unary op into a pooled buffer.
    fn pooled_map(&mut self, a: Var, f: impl Fn(f32) -> f32) -> Tensor {
        let Tape { nodes, pool } = self;
        let src = &nodes[a.0].data;
        let mut data = pool.take(src.len());
        data.extend(src.data.iter().map(|&x| f(x)));
        Tensor {
            rows: src.rows,
            cols: src.cols,
            data,
        }
    }

    /// Elementwise binary op (same shape) into a pooled buffer.
    fn pooled_zip(&mut self, a: Var, b: Var, f: impl Fn(f32, f32) -> f32) -> Tensor {
        let Tape { nodes, pool } = self;
        let (x, y) = (&nodes[a.0].data, &nodes[b.0].data);
        let mut data = pool.take(x.len());
        data.extend(x.data.iter().zip(&y.data).map(|(&x, &y)| f(x, y)));
        Tensor {
            rows: x.rows,
            cols: x.cols,
            data,
        }
    }

    fn shape(&self, v: Var) -> (usize, usize) {
        (self.nodes[v.0].data.rows, self.nodes[v.0].data.cols)
    }

    fn assert_same(&self, a: Var, b: Var, what: &str) {
        assert_eq!(self.shape(a), self.shape(b), "{what}: shape mismatch");
    }

    // ---------------------------------------------------------------- leafs

    /// Records a constant tensor (gradient stops here).
    pub fn input(&mut self, t: Tensor) -> Var {
        self.push(t, Op::Input)
    }

    /// Records a constant filled with `value`.
    pub fn constant(&mut self, rows: usize, cols: usize, value: f32) -> Var {
        let mut data = self.pool.take(rows * cols);
        data.resize(rows * cols, value);
        self.push(Tensor { rows, cols, data }, Op::Input)
    }

    /// Records a whole parameter tensor (snapshot of its current value).
    pub fn param(&mut self, store: &ParamStore, id: ParamId) -> Var {
        let src = store.value(id);
        let mut data = self.pool.take(src.len());
        data.extend_from_slice(&src.data);
        let t = Tensor {
            rows: src.rows,
            cols: src.cols,
            data,
        };
        self.push(t, Op::Param(id))
    }

    /// Records an embedding lookup: row `indices[i]` of the parameter becomes
    /// row `i` of the node. Gradients scatter-add back sparsely.
    pub fn gather(&mut self, store: &ParamStore, id: ParamId, indices: &[u32]) -> Var {
        let table = store.value(id);
        let mut data = self.pool.take(indices.len() * table.cols);
        for &ix in indices {
            data.extend_from_slice(table.row(ix as usize));
        }
        let out = Tensor {
            rows: indices.len(),
            cols: table.cols,
            data,
        };
        self.push(
            out,
            Op::Gather {
                param: id,
                indices: indices.to_vec(),
            },
        )
    }

    // ------------------------------------------------------------ binary ops

    /// Elementwise `a + b` (same shape).
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        self.assert_same(a, b, "add");
        let t = self.pooled_zip(a, b, |x, y| x + y);
        self.push(t, Op::Add(a, b))
    }

    /// Elementwise `a - b` (same shape).
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        self.assert_same(a, b, "sub");
        let t = self.pooled_zip(a, b, |x, y| x - y);
        self.push(t, Op::Sub(a, b))
    }

    /// Elementwise `a * b` (same shape).
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        self.assert_same(a, b, "mul");
        let t = self.pooled_zip(a, b, |x, y| x * y);
        self.push(t, Op::Mul(a, b))
    }

    /// Elementwise `a / b` (same shape). The caller must keep `b` away from
    /// zero (the models guarantee this with `exp`/`+ε` constructions).
    pub fn div(&mut self, a: Var, b: Var) -> Var {
        self.assert_same(a, b, "div");
        let t = self.pooled_zip(a, b, |x, y| x / y);
        self.push(t, Op::Div(a, b))
    }

    /// `a + row`, broadcasting a `1×d` row across the `B×d` tensor `a`.
    pub fn add_row(&mut self, a: Var, row: Var) -> Var {
        let (ar, ac) = self.shape(a);
        let (rr, rc) = self.shape(row);
        assert_eq!(
            (rr, rc),
            (1, ac),
            "add_row: row must be 1x{ac}, got {rr}x{rc}"
        );
        let Tape { nodes, pool } = self;
        let (at, rowt) = (&nodes[a.0].data, &nodes[row.0].data);
        let mut data = pool.take(at.len());
        for r in 0..ar {
            data.extend(at.row(r).iter().zip(&rowt.data).map(|(&x, &s)| x + s));
        }
        let out = Tensor {
            rows: ar,
            cols: ac,
            data,
        };
        self.push(out, Op::AddRow(a, row))
    }

    /// `a * row`, broadcasting a `1×d` row across the `B×d` tensor `a`.
    pub fn mul_row(&mut self, a: Var, row: Var) -> Var {
        let (ar, ac) = self.shape(a);
        let (rr, rc) = self.shape(row);
        assert_eq!(
            (rr, rc),
            (1, ac),
            "mul_row: row must be 1x{ac}, got {rr}x{rc}"
        );
        let Tape { nodes, pool } = self;
        let (at, rowt) = (&nodes[a.0].data, &nodes[row.0].data);
        let mut data = pool.take(at.len());
        for r in 0..ar {
            data.extend(at.row(r).iter().zip(&rowt.data).map(|(&x, &s)| x * s));
        }
        let out = Tensor {
            rows: ar,
            cols: ac,
            data,
        };
        self.push(out, Op::MulRow(a, row))
    }

    /// Matrix product `a · b`.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let Tape { nodes, pool } = self;
        let (at, bt) = (&nodes[a.0].data, &nodes[b.0].data);
        let (m, n) = (at.rows, bt.cols);
        let mut data = pool.take(m * n);
        data.resize(m * n, 0.0); // matmul_into accumulates; start from zeros
        at.matmul_into(bt, &mut data);
        let t = Tensor {
            rows: m,
            cols: n,
            data,
        };
        self.push(t, Op::MatMul(a, b))
    }

    /// Elementwise minimum.
    pub fn min(&mut self, a: Var, b: Var) -> Var {
        self.assert_same(a, b, "min");
        let t = self.pooled_zip(a, b, f32::min);
        self.push(t, Op::Min(a, b))
    }

    /// Elementwise maximum.
    pub fn max(&mut self, a: Var, b: Var) -> Var {
        self.assert_same(a, b, "max");
        let t = self.pooled_zip(a, b, f32::max);
        self.push(t, Op::Max(a, b))
    }

    /// `atan2(y, x)` elementwise (`y` first, like `f32::atan2`).
    pub fn atan2(&mut self, y: Var, x: Var) -> Var {
        self.assert_same(y, x, "atan2");
        let t = self.pooled_zip(y, x, f32::atan2);
        self.push(t, Op::Atan2(y, x))
    }

    // ------------------------------------------------------------- unary ops

    /// `c * a` for a compile-time scalar.
    pub fn scale(&mut self, a: Var, c: f32) -> Var {
        let t = self.pooled_map(a, |x| c * x);
        self.push(t, Op::Scale(a, c))
    }

    /// `a + c` for a scalar constant.
    pub fn add_scalar(&mut self, a: Var, c: f32) -> Var {
        let t = self.pooled_map(a, |x| x + c);
        self.push(t, Op::AddScalar(a))
    }

    /// Negation, `-a`.
    pub fn neg(&mut self, a: Var) -> Var {
        self.scale(a, -1.0)
    }

    /// Elementwise sine.
    pub fn sin(&mut self, a: Var) -> Var {
        let t = self.pooled_map(a, f32::sin);
        self.push(t, Op::Sin(a))
    }

    /// Elementwise cosine.
    pub fn cos(&mut self, a: Var) -> Var {
        let t = self.pooled_map(a, f32::cos);
        self.push(t, Op::Cos(a))
    }

    /// Elementwise hyperbolic tangent.
    pub fn tanh(&mut self, a: Var) -> Var {
        let t = self.pooled_map(a, f32::tanh);
        self.push(t, Op::Tanh(a))
    }

    /// Elementwise logistic sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let t = self.pooled_map(a, |x| 1.0 / (1.0 + (-x).exp()));
        self.push(t, Op::Sigmoid(a))
    }

    /// Elementwise ReLU.
    pub fn relu(&mut self, a: Var) -> Var {
        let t = self.pooled_map(a, |x| x.max(0.0));
        self.push(t, Op::Relu(a))
    }

    /// Elementwise absolute value.
    pub fn abs(&mut self, a: Var) -> Var {
        let t = self.pooled_map(a, f32::abs);
        self.push(t, Op::Abs(a))
    }

    /// Elementwise exponential.
    pub fn exp(&mut self, a: Var) -> Var {
        let t = self.pooled_map(a, f32::exp);
        self.push(t, Op::Exp(a))
    }

    /// Numerically stable `softplus(x) = ln(1 + e^x)`.
    pub fn softplus(&mut self, a: Var) -> Var {
        let t = self.pooled_map(a, |x| {
            if x > 20.0 {
                x
            } else if x < -20.0 {
                x.exp()
            } else {
                (1.0 + x.exp()).ln()
            }
        });
        self.push(t, Op::Softplus(a))
    }

    /// `log σ(x) = −softplus(−x)` — the stable form of the loss's log-sigmoid
    /// terms (Eq. 17).
    pub fn log_sigmoid(&mut self, a: Var) -> Var {
        let n = self.neg(a);
        let sp = self.softplus(n);
        self.neg(sp)
    }

    // --------------------------------------------------------- shape-changing

    /// Concatenates tensors with equal row counts along columns.
    pub fn concat_cols(&mut self, parts: &[Var]) -> Var {
        assert!(!parts.is_empty(), "concat_cols of nothing");
        let rows = self.shape(parts[0]).0;
        let total: usize = parts.iter().map(|&p| self.shape(p).1).sum();
        for &p in parts {
            assert_eq!(self.shape(p).0, rows, "concat_cols: row mismatch");
        }
        let Tape { nodes, pool } = self;
        let mut data = pool.take(rows * total);
        for r in 0..rows {
            for &p in parts {
                data.extend_from_slice(nodes[p.0].data.row(r));
            }
        }
        let out = Tensor {
            rows,
            cols: total,
            data,
        };
        self.push(out, Op::ConcatCols(parts.to_vec()))
    }

    /// Columns `start..end` of `a`.
    pub fn slice_cols(&mut self, a: Var, start: usize, end: usize) -> Var {
        let (rows, cols) = self.shape(a);
        assert!(start <= end && end <= cols, "slice_cols out of range");
        let Tape { nodes, pool } = self;
        let mut data = pool.take(rows * (end - start));
        for r in 0..rows {
            data.extend_from_slice(&nodes[a.0].data.row(r)[start..end]);
        }
        let out = Tensor {
            rows,
            cols: end - start,
            data,
        };
        self.push(out, Op::SliceCols(a, start, end))
    }

    /// Row-wise sum, `B×d → B×1`.
    pub fn sum_cols(&mut self, a: Var) -> Var {
        let (rows, _) = self.shape(a);
        let Tape { nodes, pool } = self;
        let mut data = pool.take(rows);
        data.extend((0..rows).map(|r| nodes[a.0].data.row(r).iter().sum::<f32>()));
        let out = Tensor {
            rows,
            cols: 1,
            data,
        };
        self.push(out, Op::SumCols(a))
    }

    /// Mean of all elements, `→ 1×1`.
    pub fn mean_all(&mut self, a: Var) -> Var {
        let n = self.nodes[a.0].data.len() as f32;
        let v = self.nodes[a.0].data.sum() / n;
        let mut data = self.pool.take(1);
        data.push(v);
        let t = Tensor {
            rows: 1,
            cols: 1,
            data,
        };
        self.push(t, Op::MeanAll(a))
    }

    /// Sum of all elements, `→ 1×1`.
    pub fn sum_all(&mut self, a: Var) -> Var {
        let v = self.nodes[a.0].data.sum();
        let mut data = self.pool.take(1);
        data.push(v);
        let t = Tensor {
            rows: 1,
            cols: 1,
            data,
        };
        self.push(t, Op::SumAll(a))
    }

    /// Row-wise L1 norm `‖a‖₁` as a `B×1` column (`Σ|aᵢ|`).
    pub fn l1_rows(&mut self, a: Var) -> Var {
        let ab = self.abs(a);
        self.sum_cols(ab)
    }

    // -------------------------------------------------------------- backward

    /// Runs the reverse pass from the scalar node `loss`, accumulating
    /// parameter gradients into `store`. Returns the per-node gradients for
    /// inspection (index = node id; `None` if the node received no gradient).
    ///
    /// # Panics
    /// If `loss` is not a `1×1` tensor.
    pub fn backward(&self, loss: Var, store: &mut ParamStore) -> Vec<Option<Tensor>> {
        self.backward_into(loss, store)
    }

    /// [`Tape::backward`] generalized over the gradient destination: `sink`
    /// may be the [`ParamStore`] itself or a worker-private
    /// [`crate::GradBuffer`] when several shards run backward concurrently.
    pub fn backward_into<S: GradSink>(&self, loss: Var, sink: &mut S) -> Vec<Option<Tensor>> {
        assert_eq!(self.shape(loss), (1, 1), "backward: loss must be scalar");
        let mut grads: Vec<Option<Tensor>> = vec![None; self.nodes.len()];
        grads[loss.0] = Some(Tensor::scalar(1.0));

        // Helper to accumulate into an Option<Tensor> slot.
        fn acc(slot: &mut Option<Tensor>, add: &Tensor) {
            match slot {
                Some(t) => t.add_assign(add),
                None => *slot = Some(add.clone()),
            }
        }

        for idx in (0..self.nodes.len()).rev() {
            let g = match grads[idx].take() {
                Some(g) => g,
                None => continue,
            };
            let node = &self.nodes[idx];
            match &node.op {
                Op::Input => {}
                Op::Param(id) => sink.accumulate(*id, &g),
                Op::Gather { param, indices } => {
                    for (i, &ix) in indices.iter().enumerate() {
                        sink.accumulate_row(*param, ix as usize, g.row(i));
                    }
                }
                Op::Add(a, b) => {
                    acc(&mut grads[a.0], &g);
                    acc(&mut grads[b.0], &g);
                }
                Op::Sub(a, b) => {
                    acc(&mut grads[a.0], &g);
                    let neg = g.map(|x| -x);
                    acc(&mut grads[b.0], &neg);
                }
                Op::Mul(a, b) => {
                    let ga = g.zip_map(&self.nodes[b.0].data, |g, y| g * y);
                    let gb = g.zip_map(&self.nodes[a.0].data, |g, x| g * x);
                    acc(&mut grads[a.0], &ga);
                    acc(&mut grads[b.0], &gb);
                }
                Op::Div(a, b) => {
                    let bd = &self.nodes[b.0].data;
                    let ad = &self.nodes[a.0].data;
                    let ga = g.zip_map(bd, |g, y| g / y);
                    let mut gb = g.zip_map(ad, |g, x| g * x);
                    gb = gb.zip_map(bd, |t, y| -t / (y * y));
                    acc(&mut grads[a.0], &ga);
                    acc(&mut grads[b.0], &gb);
                }
                Op::AddRow(a, row) => {
                    acc(&mut grads[a.0], &g);
                    let mut gr = Tensor::zeros(1, g.cols);
                    for r in 0..g.rows {
                        for (d, &s) in gr.data.iter_mut().zip(g.row(r)) {
                            *d += s;
                        }
                    }
                    acc(&mut grads[row.0], &gr);
                }
                Op::MulRow(a, row) => {
                    let rowd = &self.nodes[row.0].data;
                    let ad = &self.nodes[a.0].data;
                    let mut ga = g.clone();
                    for r in 0..ga.rows {
                        let dst = ga.row_mut(r);
                        for (d, &s) in dst.iter_mut().zip(&rowd.data) {
                            *d *= s;
                        }
                    }
                    acc(&mut grads[a.0], &ga);
                    let mut gr = Tensor::zeros(1, g.cols);
                    for r in 0..g.rows {
                        for c in 0..g.cols {
                            gr.data[c] += g.get(r, c) * ad.get(r, c);
                        }
                    }
                    acc(&mut grads[row.0], &gr);
                }
                Op::MatMul(a, b) => {
                    let ga = g.matmul_t(&self.nodes[b.0].data); // g · bᵀ
                    let gb = self.nodes[a.0].data.t_matmul(&g); // aᵀ · g
                    acc(&mut grads[a.0], &ga);
                    acc(&mut grads[b.0], &gb);
                }
                Op::Scale(a, c) => {
                    let ga = g.map(|x| c * x);
                    acc(&mut grads[a.0], &ga);
                }
                Op::AddScalar(a) => acc(&mut grads[a.0], &g),
                Op::Sin(a) => {
                    let ga = g.zip_map(&self.nodes[a.0].data, |g, x| g * x.cos());
                    acc(&mut grads[a.0], &ga);
                }
                Op::Cos(a) => {
                    let ga = g.zip_map(&self.nodes[a.0].data, |g, x| -g * x.sin());
                    acc(&mut grads[a.0], &ga);
                }
                Op::Tanh(a) => {
                    let ga = g.zip_map(&node.data, |g, y| g * (1.0 - y * y));
                    acc(&mut grads[a.0], &ga);
                }
                Op::Sigmoid(a) => {
                    let ga = g.zip_map(&node.data, |g, y| g * y * (1.0 - y));
                    acc(&mut grads[a.0], &ga);
                }
                Op::Relu(a) => {
                    let ga = g.zip_map(&self.nodes[a.0].data, |g, x| if x > 0.0 { g } else { 0.0 });
                    acc(&mut grads[a.0], &ga);
                }
                Op::Abs(a) => {
                    let ga = g.zip_map(&self.nodes[a.0].data, |g, x| g * x.signum());
                    acc(&mut grads[a.0], &ga);
                }
                Op::Exp(a) => {
                    let ga = g.zip_map(&node.data, |g, y| g * y);
                    acc(&mut grads[a.0], &ga);
                }
                Op::Softplus(a) => {
                    let ga = g.zip_map(&self.nodes[a.0].data, |g, x| g / (1.0 + (-x).exp()));
                    acc(&mut grads[a.0], &ga);
                }
                Op::Atan2(y, x) => {
                    let yd = &self.nodes[y.0].data;
                    let xd = &self.nodes[x.0].data;
                    // d/dy atan2 = x/(x²+y²); d/dx atan2 = −y/(x²+y²).
                    let mut gy = Tensor::zeros(g.rows, g.cols);
                    let mut gx = Tensor::zeros(g.rows, g.cols);
                    for i in 0..g.data.len() {
                        let denom = xd.data[i] * xd.data[i] + yd.data[i] * yd.data[i];
                        let denom = if denom < 1e-12 { 1e-12 } else { denom };
                        gy.data[i] = g.data[i] * xd.data[i] / denom;
                        gx.data[i] = -g.data[i] * yd.data[i] / denom;
                    }
                    acc(&mut grads[y.0], &gy);
                    acc(&mut grads[x.0], &gx);
                }
                Op::ConcatCols(parts) => {
                    let mut off = 0;
                    for &p in parts {
                        let pc = self.nodes[p.0].data.cols;
                        let mut gp = Tensor::zeros(g.rows, pc);
                        for r in 0..g.rows {
                            gp.row_mut(r).copy_from_slice(&g.row(r)[off..off + pc]);
                        }
                        acc(&mut grads[p.0], &gp);
                        off += pc;
                    }
                }
                Op::SliceCols(a, start, _end) => {
                    let (ar, ac) = (self.nodes[a.0].data.rows, self.nodes[a.0].data.cols);
                    let mut ga = Tensor::zeros(ar, ac);
                    for r in 0..g.rows {
                        ga.row_mut(r)[*start..*start + g.cols].copy_from_slice(g.row(r));
                    }
                    acc(&mut grads[a.0], &ga);
                }
                Op::SumCols(a) => {
                    let (ar, ac) = (self.nodes[a.0].data.rows, self.nodes[a.0].data.cols);
                    let mut ga = Tensor::zeros(ar, ac);
                    for r in 0..ar {
                        let gr = g.data[r];
                        ga.row_mut(r).iter_mut().for_each(|x| *x = gr);
                    }
                    acc(&mut grads[a.0], &ga);
                }
                Op::MeanAll(a) => {
                    let n = self.nodes[a.0].data.len() as f32;
                    let ga = Tensor::full(
                        self.nodes[a.0].data.rows,
                        self.nodes[a.0].data.cols,
                        g.item() / n,
                    );
                    acc(&mut grads[a.0], &ga);
                }
                Op::SumAll(a) => {
                    let ga = Tensor::full(
                        self.nodes[a.0].data.rows,
                        self.nodes[a.0].data.cols,
                        g.item(),
                    );
                    acc(&mut grads[a.0], &ga);
                }
                Op::Min(a, b) => {
                    let ad = &self.nodes[a.0].data;
                    let bd = &self.nodes[b.0].data;
                    let mut ga = Tensor::zeros(g.rows, g.cols);
                    let mut gb = Tensor::zeros(g.rows, g.cols);
                    for i in 0..g.data.len() {
                        if ad.data[i] <= bd.data[i] {
                            ga.data[i] = g.data[i];
                        } else {
                            gb.data[i] = g.data[i];
                        }
                    }
                    acc(&mut grads[a.0], &ga);
                    acc(&mut grads[b.0], &gb);
                }
                Op::Max(a, b) => {
                    let ad = &self.nodes[a.0].data;
                    let bd = &self.nodes[b.0].data;
                    let mut ga = Tensor::zeros(g.rows, g.cols);
                    let mut gb = Tensor::zeros(g.rows, g.cols);
                    for i in 0..g.data.len() {
                        if ad.data[i] >= bd.data[i] {
                            ga.data[i] = g.data[i];
                        } else {
                            gb.data[i] = g.data[i];
                        }
                    }
                    acc(&mut grads[a.0], &ga);
                    acc(&mut grads[b.0], &gb);
                }
            }
            // Re-store the node's own gradient so callers can inspect it.
            grads[idx] = Some(g);
        }
        grads
    }
}

impl Default for Tape {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar_store(vals: &[f32]) -> (ParamStore, Vec<ParamId>) {
        let mut s = ParamStore::new();
        let ids = vals.iter().map(|&v| s.add(Tensor::scalar(v))).collect();
        (s, ids)
    }

    #[test]
    fn add_mul_chain_gradients() {
        // f = (a + b) * a; df/da = 2a + b, df/db = a.
        let (mut s, ids) = scalar_store(&[2.0, 3.0]);
        let mut t = Tape::new();
        let a = t.param(&s, ids[0]);
        let b = t.param(&s, ids[1]);
        let sum = t.add(a, b);
        let f = t.mul(sum, a);
        assert_eq!(t.value(f).item(), 10.0);
        t.backward(f, &mut s);
        assert!((s.grad(ids[0]).item() - 7.0).abs() < 1e-5);
        assert!((s.grad(ids[1]).item() - 2.0).abs() < 1e-5);
    }

    #[test]
    fn matmul_gradients_match_manual() {
        // f = sum(x · w), x constant 1×2, w param 2×2.
        let mut s = ParamStore::new();
        let w = s.add(Tensor::from_vec(2, 2, vec![1., 2., 3., 4.]));
        let mut t = Tape::new();
        let x = t.input(Tensor::from_vec(1, 2, vec![5., 7.]));
        let wv = t.param(&s, w);
        let y = t.matmul(x, wv);
        let f = t.sum_all(y);
        t.backward(f, &mut s);
        // d f / d w[i][j] = x[i]
        assert_eq!(s.grad(w).data, vec![5., 5., 7., 7.]);
    }

    #[test]
    fn gather_scatters_sparse_grads() {
        let mut s = ParamStore::new();
        let e = s.add(Tensor::from_vec(4, 2, vec![0.; 8]));
        let mut t = Tape::new();
        let rows = t.gather(&s, e, &[1, 3, 1]);
        let f = t.sum_all(rows);
        t.backward(f, &mut s);
        // Row 1 referenced twice, row 3 once, rows 0 and 2 untouched.
        assert_eq!(s.grad(e).row(0), &[0., 0.]);
        assert_eq!(s.grad(e).row(1), &[2., 2.]);
        assert_eq!(s.grad(e).row(2), &[0., 0.]);
        assert_eq!(s.grad(e).row(3), &[1., 1.]);
    }

    #[test]
    fn broadcast_row_ops() {
        let mut s = ParamStore::new();
        let b = s.add(Tensor::from_vec(1, 2, vec![1.0, -1.0]));
        let mut t = Tape::new();
        let x = t.input(Tensor::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]));
        let bv = t.param(&s, b);
        let y = t.add_row(x, bv);
        assert_eq!(t.value(y).row(0), &[2., 1.]);
        let f = t.sum_all(y);
        t.backward(f, &mut s);
        // Bias grad is the column sum of ones = number of rows.
        assert_eq!(s.grad(b).data, vec![3., 3.]);
    }

    #[test]
    fn mul_row_grads() {
        let mut s = ParamStore::new();
        let k = s.add(Tensor::from_vec(1, 2, vec![2.0, 0.5]));
        let mut t = Tape::new();
        let x = t.input(Tensor::from_vec(2, 2, vec![1., 2., 3., 4.]));
        let kv = t.param(&s, k);
        let y = t.mul_row(x, kv);
        assert_eq!(t.value(y).data, vec![2., 1., 6., 2.]);
        let f = t.sum_all(y);
        t.backward(f, &mut s);
        // d/dk_c = Σ_r x[r][c]
        assert_eq!(s.grad(k).data, vec![4., 6.]);
    }

    #[test]
    fn trig_gradients() {
        let (mut s, ids) = scalar_store(&[0.7]);
        let mut t = Tape::new();
        let a = t.param(&s, ids[0]);
        let sv = t.sin(a);
        let cv = t.cos(a);
        let sum = t.add(sv, cv);
        let f = t.sum_all(sum);
        t.backward(f, &mut s);
        let expect = 0.7f32.cos() - 0.7f32.sin();
        assert!((s.grad(ids[0]).item() - expect).abs() < 1e-5);
    }

    #[test]
    fn atan2_recovers_angle_gradient() {
        // θ = atan2(sin t, cos t) has dθ/dt = 1.
        let (mut s, ids) = scalar_store(&[1.1]);
        let mut t = Tape::new();
        let a = t.param(&s, ids[0]);
        let y = t.sin(a);
        let x = t.cos(a);
        let theta = t.atan2(y, x);
        let f = t.sum_all(theta);
        t.backward(f, &mut s);
        assert!((s.grad(ids[0]).item() - 1.0).abs() < 1e-4);
    }

    #[test]
    fn min_max_subgradients_route_to_winner() {
        let (mut s, ids) = scalar_store(&[1.0, 2.0]);
        let mut t = Tape::new();
        let a = t.param(&s, ids[0]);
        let b = t.param(&s, ids[1]);
        let mn = t.min(a, b);
        let mx = t.max(a, b);
        let both = t.add(mn, mx);
        let f = t.sum_all(both);
        t.backward(f, &mut s);
        // min picks a, max picks b: each gets gradient 1.
        assert_eq!(s.grad(ids[0]).item(), 1.0);
        assert_eq!(s.grad(ids[1]).item(), 1.0);
    }

    #[test]
    fn concat_slice_roundtrip_grads() {
        let mut s = ParamStore::new();
        let p = s.add(Tensor::from_vec(2, 2, vec![1., 2., 3., 4.]));
        let q = s.add(Tensor::from_vec(2, 1, vec![5., 6.]));
        let mut t = Tape::new();
        let pv = t.param(&s, p);
        let qv = t.param(&s, q);
        let cat = t.concat_cols(&[pv, qv]);
        assert_eq!(t.value(cat).row(0), &[1., 2., 5.]);
        // Only the q-part contributes to the loss.
        let sl = t.slice_cols(cat, 2, 3);
        let f = t.sum_all(sl);
        t.backward(f, &mut s);
        assert_eq!(s.grad(p).data, vec![0.; 4]);
        assert_eq!(s.grad(q).data, vec![1., 1.]);
    }

    #[test]
    fn log_sigmoid_matches_direct_computation() {
        let mut t = Tape::new();
        let x = t.input(Tensor::from_vec(1, 3, vec![-2.0, 0.0, 2.0]));
        let ls = t.log_sigmoid(x);
        for (i, &xi) in [-2.0f32, 0.0, 2.0].iter().enumerate() {
            let direct = (1.0 / (1.0 + (-xi).exp())).ln();
            assert!((t.value(ls).data[i] - direct).abs() < 1e-5);
        }
    }

    #[test]
    fn softplus_stable_at_extremes() {
        let mut t = Tape::new();
        let x = t.input(Tensor::from_vec(1, 2, vec![100.0, -100.0]));
        let sp = t.softplus(x);
        assert!((t.value(sp).data[0] - 100.0).abs() < 1e-4);
        assert!(t.value(sp).data[1].abs() < 1e-4);
        assert!(t.value(sp).data.iter().all(|v| v.is_finite()));
    }

    #[test]
    fn mean_all_gradient_is_uniform() {
        let mut s = ParamStore::new();
        let p = s.add(Tensor::from_vec(2, 2, vec![1., 2., 3., 4.]));
        let mut t = Tape::new();
        let pv = t.param(&s, p);
        let m = t.mean_all(pv);
        t.backward(m, &mut s);
        assert_eq!(s.grad(p).data, vec![0.25; 4]);
    }

    #[test]
    fn sum_cols_shape_and_grad() {
        let mut s = ParamStore::new();
        let p = s.add(Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]));
        let mut t = Tape::new();
        let pv = t.param(&s, p);
        let sc = t.sum_cols(pv);
        assert_eq!(t.value(sc).data, vec![6., 15.]);
        let f = t.sum_all(sc);
        t.backward(f, &mut s);
        assert_eq!(s.grad(p).data, vec![1.; 6]);
    }

    #[test]
    fn reused_variable_accumulates() {
        // f = a*a: gradient must be 2a, requiring accumulation through both
        // mul parents pointing at the same node.
        let (mut s, ids) = scalar_store(&[3.0]);
        let mut t = Tape::new();
        let a = t.param(&s, ids[0]);
        let f0 = t.mul(a, a);
        let f = t.sum_all(f0);
        t.backward(f, &mut s);
        assert!((s.grad(ids[0]).item() - 6.0).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "loss must be scalar")]
    fn backward_requires_scalar() {
        let mut s = ParamStore::new();
        let mut t = Tape::new();
        let x = t.input(Tensor::zeros(2, 2));
        t.backward(x, &mut s);
    }

    #[test]
    fn l1_rows_helper() {
        let mut t = Tape::new();
        let x = t.input(Tensor::from_vec(2, 2, vec![-1., 2., 3., -4.]));
        let l1 = t.l1_rows(x);
        assert_eq!(t.value(l1).data, vec![3., 7.]);
    }

    /// One forward+backward pass of a small MLP-like graph; returns the loss
    /// value and the two parameter gradients.
    fn run_graph(
        t: &mut Tape,
        s: &mut ParamStore,
        w: ParamId,
        b: ParamId,
    ) -> (f32, Tensor, Tensor) {
        s.zero_grads();
        let x = t.input(Tensor::from_vec(3, 2, vec![0.3, -1.2, 0.8, 0.5, -0.7, 2.0]));
        let wv = t.param(s, w);
        let bv = t.param(s, b);
        let h = t.matmul(x, wv);
        let hb = t.add_row(h, bv);
        let a = t.relu(hb);
        let sq = t.mul(a, a);
        let loss = t.mean_all(sq);
        let lv = t.value(loss).item();
        t.backward(loss, s);
        (lv, s.grad(w).clone(), s.grad(b).clone())
    }

    #[test]
    fn reset_reuse_is_bit_identical_to_fresh_tape() {
        let mut s = ParamStore::new();
        let w = s.add(Tensor::from_vec(2, 2, vec![0.6, -0.4, 0.1, 0.9]));
        let b = s.add(Tensor::from_vec(1, 2, vec![0.05, -0.02]));

        // Reference: a fresh tape per pass (no buffer reuse possible).
        let mut fresh_runs = Vec::new();
        for _ in 0..3 {
            let mut t = Tape::new();
            fresh_runs.push(run_graph(&mut t, &mut s, w, b));
        }

        // Pooled: one tape reset between passes, recycling buffers.
        let mut t = Tape::new();
        for fresh in &fresh_runs {
            t.reset();
            let pooled = run_graph(&mut t, &mut s, w, b);
            assert_eq!(pooled.0.to_bits(), fresh.0.to_bits(), "loss diverged");
            assert_eq!(pooled.1.data, fresh.1.data, "weight grad diverged");
            assert_eq!(pooled.2.data, fresh.2.data, "bias grad diverged");
        }
    }

    #[test]
    fn reset_recycles_buffers() {
        let mut t = Tape::new();
        let x = t.constant(1, 4, 2.0);
        let y = t.relu(x);
        let _ = t.sum_all(y);
        assert_eq!(t.pooled_buffers(), 0);
        let nodes = t.len();
        t.reset();
        assert!(t.is_empty());
        assert_eq!(t.pooled_buffers(), nodes, "every node buffer pooled");
        // A second identical pass must not grow the pool's total footprint.
        let x = t.constant(1, 4, 2.0);
        let y = t.relu(x);
        let _ = t.sum_all(y);
        assert_eq!(t.pooled_buffers(), 0, "pass reuses every pooled buffer");
        t.reset();
        assert_eq!(t.pooled_buffers(), nodes);
        t.clear_pool();
        assert_eq!(t.pooled_buffers(), 0);
    }

    #[test]
    fn pooled_buffers_come_back_dirty_but_ops_overwrite_fully() {
        // Fill the pool with garbage-laden buffers, then check each op class
        // produces exactly the values a fresh tape would.
        let mut t = Tape::new();
        let big = t.input(Tensor::full(8, 8, f32::NAN));
        let _ = t.relu(big);
        t.reset();

        let a = t.input(Tensor::from_vec(2, 2, vec![1., -2., 3., -4.]));
        let b = t.input(Tensor::from_vec(2, 2, vec![2., 2., 2., 2.]));
        let sum = t.add(a, b);
        assert_eq!(t.value(sum).data, vec![3., 0., 5., -2.]);
        let mm = t.matmul(a, b);
        assert_eq!(t.value(mm).data, vec![-2., -2., -2., -2.]);
        let c = t.constant(2, 2, 0.5);
        assert_eq!(t.value(c).data, vec![0.5; 4]);
        let sc = t.sum_cols(a);
        assert_eq!(t.value(sc).data, vec![-1., -1.]);
    }
}
