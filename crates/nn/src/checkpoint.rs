//! Binary checkpoints for [`ParamStore`].
//!
//! A compact little-endian format carrying every parameter tensor plus the
//! full Adam state, so training can pause/resume exactly and trained models
//! can ship without the training graph. JSON (serde) stays available for
//! debugging; this format is ~4 bytes/scalar instead of ~12.
//!
//! Version 2 layout: `magic "HALKCKPT" | version u32 | step u64 |
//! n_params u32 |` then per parameter `rows u32 | cols u32 | values f32* |
//! Adam m f32* | v f32*`, followed by a trailing `crc32 u32` (IEEE) over
//! every preceding byte including the magic. Version 1 files — the same
//! layout without the checksum — remain readable.
//!
//! [`save_file`] is crash-safe: the checkpoint is written to a sibling
//! temporary file, fsynced, and atomically renamed over the destination, so
//! a crash mid-save leaves either the old file or the new one, never a
//! torn mixture. The [`fault`] module provides an injectable IO layer used
//! by the robustness tests (partial writes, bit flips, transient errors);
//! transient errors are retried with bounded backoff.

use crate::params::ParamStore;
use crate::tensor::Tensor;
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::time::Duration;

const MAGIC: &[u8; 8] = b"HALKCKPT";
/// Current (written) format version.
pub const VERSION: u32 = 2;
/// Legacy checksum-less format, still accepted by [`from_bytes`].
pub const VERSION_V1: u32 = 1;

/// Errors produced while decoding a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The buffer does not start with the checkpoint magic.
    BadMagic,
    /// Unknown format version.
    BadVersion(u32),
    /// The buffer ended before the declared content.
    Truncated,
    /// Bytes remain after the declared content.
    TrailingBytes,
    /// The v2 trailing CRC32 does not match the payload.
    ChecksumMismatch { stored: u32, computed: u32 },
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not a HaLk checkpoint (bad magic)"),
            CheckpointError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CheckpointError::Truncated => write!(f, "checkpoint truncated"),
            CheckpointError::TrailingBytes => write!(f, "checkpoint has trailing bytes"),
            CheckpointError::ChecksumMismatch { stored, computed } => write!(
                f,
                "checkpoint corrupted: stored crc32 {stored:#010x}, computed {computed:#010x}"
            ),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Slicing-by-8 lookup tables for [`crc32`], built at compile time.
/// `CRC_TABLES[0]` is the classic byte-at-a-time table; table `k` advances
/// a byte through `k` further zero bytes, so eight table lookups consume
/// eight input bytes per iteration.
const CRC_TABLES: [[u32; 256]; 8] = {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut j = 0;
        while j < 8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
            j += 1;
        }
        t[0][i] = crc;
        i += 1;
    }
    let mut k = 1;
    while k < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = t[k - 1][i];
            t[k][i] = (prev >> 8) ^ t[0][(prev & 0xFF) as usize];
            i += 1;
        }
        k += 1;
    }
    t
};

/// Slicing-by-8 over a running (non-inverted) CRC state.
fn crc32_sliced(mut crc: u32, data: &[u8]) -> u32 {
    let mut chunks = data.chunks_exact(8);
    for c in &mut chunks {
        let lo = crc ^ u32::from_le_bytes([c[0], c[1], c[2], c[3]]);
        let hi = u32::from_le_bytes([c[4], c[5], c[6], c[7]]);
        crc = CRC_TABLES[7][(lo & 0xFF) as usize]
            ^ CRC_TABLES[6][((lo >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[5][((lo >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[4][(lo >> 24) as usize]
            ^ CRC_TABLES[3][(hi & 0xFF) as usize]
            ^ CRC_TABLES[2][((hi >> 8) & 0xFF) as usize]
            ^ CRC_TABLES[1][((hi >> 16) & 0xFF) as usize]
            ^ CRC_TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = (crc >> 8) ^ CRC_TABLES[0][((crc ^ b as u32) & 0xFF) as usize];
    }
    crc
}

/// Carry-less-multiplication CRC32 (the classic folding scheme from
/// Intel's "Fast CRC Computation Using PCLMULQDQ" note): fold 64-byte
/// blocks through four 128-bit lanes, collapse to one lane, then Barrett-
/// reduce to 32 bits. Runs at roughly memory speed, an order of magnitude
/// past the table kernel. Guarded by runtime feature detection; callers
/// fall back to [`crc32_sliced`] on other hardware. The constants are the
/// standard precomputed `x^k mod P` residues for the reflected IEEE
/// polynomial, so the result is bit-identical to the table kernel — pinned
/// by the equivalence test across every length class.
#[cfg(target_arch = "x86_64")]
mod crc_pclmul {
    use std::arch::x86_64::*;

    const K1: i64 = 0x0001_5444_2bd4; // x^(4·128+32) mod P
    const K2: i64 = 0x0001_c6e4_1596; // x^(4·128-32) mod P
    const K3: i64 = 0x0001_7519_97d0; // x^(128+32)   mod P
    const K4: i64 = 0x0000_ccaa_009e; // x^(128-32)   mod P
    const K5: i64 = 0x0001_63cd_6124; // x^64         mod P
    const P_X: i64 = 0x0001_db71_0641; // P (reflected, with x^32 term)
    const U_PRIME: i64 = 0x0001_f701_1641; // Barrett µ

    #[inline]
    #[target_feature(enable = "pclmulqdq", enable = "sse4.1")]
    unsafe fn next16(data: &mut &[u8]) -> __m128i {
        let v = _mm_loadu_si128(data.as_ptr() as *const __m128i);
        *data = &data[16..];
        v
    }

    #[inline]
    #[target_feature(enable = "pclmulqdq", enable = "sse4.1")]
    unsafe fn fold16(a: __m128i, b: __m128i, keys: __m128i) -> __m128i {
        let lo = _mm_clmulepi64_si128(a, keys, 0x00);
        let hi = _mm_clmulepi64_si128(a, keys, 0x11);
        _mm_xor_si128(_mm_xor_si128(b, lo), hi)
    }

    /// Advances CRC state over the longest prefix of whole 16-byte blocks
    /// (requires ≥ 64 bytes); returns the new state and the unconsumed
    /// tail for the table kernel.
    #[target_feature(enable = "pclmulqdq", enable = "sse4.1")]
    pub unsafe fn fold(crc: u32, mut data: &[u8]) -> (u32, &[u8]) {
        debug_assert!(data.len() >= 64);
        let k1k2 = _mm_set_epi64x(K2, K1);
        let mut x3 = next16(&mut data);
        let mut x2 = next16(&mut data);
        let mut x1 = next16(&mut data);
        let mut x0 = next16(&mut data);
        x3 = _mm_xor_si128(x3, _mm_set_epi32(0, 0, 0, crc as i32));
        while data.len() >= 64 {
            x3 = fold16(x3, next16(&mut data), k1k2);
            x2 = fold16(x2, next16(&mut data), k1k2);
            x1 = fold16(x1, next16(&mut data), k1k2);
            x0 = fold16(x0, next16(&mut data), k1k2);
        }
        let k3k4 = _mm_set_epi64x(K4, K3);
        let mut x = fold16(x3, x2, k3k4);
        x = fold16(x, x1, k3k4);
        x = fold16(x, x0, k3k4);
        while data.len() >= 16 {
            x = fold16(x, next16(&mut data), k3k4);
        }
        // 128 → 64 bits.
        let lo32 = _mm_set_epi32(0, 0, 0, !0);
        x = _mm_xor_si128(_mm_clmulepi64_si128(x, k3k4, 0x10), _mm_srli_si128(x, 8));
        x = _mm_xor_si128(
            _mm_clmulepi64_si128(_mm_and_si128(x, lo32), _mm_set_epi64x(0, K5), 0x00),
            _mm_srli_si128(x, 4),
        );
        // Barrett reduction 64 → 32 bits.
        let pu = _mm_set_epi64x(U_PRIME, P_X);
        let t1 = _mm_clmulepi64_si128(_mm_and_si128(x, lo32), pu, 0x10);
        let t2 = _mm_xor_si128(_mm_clmulepi64_si128(_mm_and_si128(t1, lo32), pu, 0x00), x);
        (_mm_extract_epi32(t2, 1) as u32, data)
    }

    /// Whether the fold kernel can run on this CPU (checked once).
    pub fn available() -> bool {
        use std::sync::OnceLock;
        static AVAILABLE: OnceLock<bool> = OnceLock::new();
        *AVAILABLE.get_or_init(|| {
            std::is_x86_feature_detected!("pclmulqdq") && std::is_x86_feature_detected!("sse4.1")
        })
    }
}

/// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320). Checkpoints and
/// snapshots checksum every byte they read and write, so this sits on the
/// cold-boot path of multi-megabyte files; the original bitwise
/// formulation (8 shift/xor steps per byte) was the dominant cost of
/// snapshot decode. Large inputs take the carry-less-multiply fold where
/// the CPU supports it, the slicing-by-8 table kernel otherwise; values
/// are identical either way and match the bitwise reference — the on-disk
/// format is unchanged.
pub fn crc32(data: &[u8]) -> u32 {
    let mut state = 0xFFFF_FFFFu32;
    let mut rest = data;
    #[cfg(target_arch = "x86_64")]
    if rest.len() >= 64 && crc_pclmul::available() {
        // SAFETY: `available()` verified pclmulqdq + sse4.1 at runtime.
        let (s, r) = unsafe { crc_pclmul::fold(state, rest) };
        state = s;
        rest = r;
    }
    !crc32_sliced(state, rest)
}

fn encode(store: &ParamStore, version: u32) -> Vec<u8> {
    let mut buf = Vec::with_capacity(28 + store.num_scalars() * 12);
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&version.to_le_bytes());
    buf.extend_from_slice(&store.steps_taken().to_le_bytes());
    buf.extend_from_slice(&(store.len() as u32).to_le_bytes());
    for i in 0..store.len() {
        let id = crate::params::ParamId(i);
        let (value, m, v) = store.checkpoint_views(id);
        buf.extend_from_slice(&(value.rows as u32).to_le_bytes());
        buf.extend_from_slice(&(value.cols as u32).to_le_bytes());
        for t in [value, m, v] {
            for &x in &t.data {
                buf.extend_from_slice(&x.to_le_bytes());
            }
        }
    }
    if version >= 2 {
        let crc = crc32(&buf);
        buf.extend_from_slice(&crc.to_le_bytes());
    }
    buf
}

/// Serializes a store (values + optimizer state) to v2 bytes.
pub fn to_bytes(store: &ParamStore) -> Vec<u8> {
    encode(store, VERSION)
}

/// Serializes in the legacy v1 (checksum-less) layout. Kept so
/// compatibility tests can fabricate v1 inputs; new code should use
/// [`to_bytes`].
pub fn to_bytes_v1(store: &ParamStore) -> Vec<u8> {
    encode(store, VERSION_V1)
}

/// Bounds-checked little-endian reader over a byte slice.
struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    fn take(&mut self, n: usize) -> Result<&'a [u8], CheckpointError> {
        let end = self.pos.checked_add(n).ok_or(CheckpointError::Truncated)?;
        if end > self.buf.len() {
            return Err(CheckpointError::Truncated);
        }
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u32_le(&mut self) -> Result<u32, CheckpointError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64_le(&mut self) -> Result<u64, CheckpointError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn f32_vec(&mut self, n: usize) -> Result<Vec<f32>, CheckpointError> {
        let raw = self.take(n.checked_mul(4).ok_or(CheckpointError::Truncated)?)?;
        Ok(raw
            .chunks_exact(4)
            .map(|c| f32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

/// Restores a store from bytes produced by [`to_bytes`] (v2) or a legacy
/// v1 writer. Never panics on malformed input: every defect maps to a
/// typed [`CheckpointError`].
pub fn from_bytes(buf: &[u8]) -> Result<ParamStore, CheckpointError> {
    if buf.len() < 8 || &buf[..8] != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    if buf.len() < 12 {
        return Err(CheckpointError::Truncated);
    }
    let version = u32::from_le_bytes(buf[8..12].try_into().unwrap());
    let payload = match version {
        VERSION_V1 => buf,
        VERSION => {
            // Verify the trailing checksum before trusting any of the
            // payload structure.
            if buf.len() < 16 {
                return Err(CheckpointError::Truncated);
            }
            let body = &buf[..buf.len() - 4];
            let stored = u32::from_le_bytes(buf[buf.len() - 4..].try_into().unwrap());
            let computed = crc32(body);
            if stored != computed {
                return Err(CheckpointError::ChecksumMismatch { stored, computed });
            }
            body
        }
        other => return Err(CheckpointError::BadVersion(other)),
    };

    let mut cur = Cursor {
        buf: payload,
        pos: 12,
    };
    let step = cur.u64_le()?;
    let n_params = cur.u32_le()? as usize;

    let mut store = ParamStore::new();
    for _ in 0..n_params {
        let rows = cur.u32_le()? as usize;
        let cols = cur.u32_le()? as usize;
        let n = rows.checked_mul(cols).ok_or(CheckpointError::Truncated)?;
        let value = Tensor::from_vec(rows, cols, cur.f32_vec(n)?);
        let m = Tensor::from_vec(rows, cols, cur.f32_vec(n)?);
        let v = Tensor::from_vec(rows, cols, cur.f32_vec(n)?);
        let id = store.add(value);
        store.restore_adam_state(id, m, v);
    }
    if cur.remaining() != 0 {
        return Err(CheckpointError::TrailingBytes);
    }
    store.restore_step(step);
    Ok(store)
}

/// Retry policy for transient IO errors during [`save_file_with`].
#[derive(Debug, Clone)]
pub struct RetryPolicy {
    /// Total attempts (first try included). Must be at least 1.
    pub max_attempts: u32,
    /// Base backoff; attempt `k` sleeps `backoff * k` before retrying.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff: Duration::from_millis(10),
        }
    }
}

fn is_transient(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::Interrupted | io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

fn temp_sibling(path: &Path) -> PathBuf {
    let name = path
        .file_name()
        .map(|n| n.to_string_lossy().into_owned())
        .unwrap_or_else(|| "checkpoint".to_string());
    path.with_file_name(format!(".{name}.tmp"))
}

/// Writes a checkpoint file crash-safely: temp sibling + fsync + atomic
/// rename, retrying transient IO errors per the default [`RetryPolicy`].
pub fn save_file(store: &ParamStore, path: &Path) -> io::Result<()> {
    save_file_with(store, path, &RetryPolicy::default(), &mut fault::RealIo)
}

/// [`save_file`] with an explicit retry policy and IO layer (the latter so
/// tests can inject faults).
pub fn save_file_with(
    store: &ParamStore,
    path: &Path,
    policy: &RetryPolicy,
    io: &mut dyn fault::CheckpointIo,
) -> io::Result<()> {
    let data = to_bytes(store);
    let tmp = temp_sibling(path);
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        let result = io
            .write_file(&tmp, &data)
            .and_then(|()| io.rename(&tmp, path))
            .and_then(|()| match path.parent() {
                Some(dir) if !dir.as_os_str().is_empty() => io.sync_dir(dir),
                _ => Ok(()),
            });
        match result {
            Ok(()) => return Ok(()),
            Err(e) if is_transient(&e) && attempt < policy.max_attempts.max(1) => {
                let _ = std::fs::remove_file(&tmp);
                std::thread::sleep(policy.backoff.saturating_mul(attempt));
            }
            Err(e) => {
                let _ = std::fs::remove_file(&tmp);
                return Err(e);
            }
        }
    }
}

/// Reads a checkpoint file; decode defects surface as
/// `io::ErrorKind::InvalidData` wrapping the [`CheckpointError`].
pub fn load_file(path: &Path) -> io::Result<ParamStore> {
    let data = std::fs::read(path)?;
    from_bytes(&data).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

/// Injectable IO layer for checkpoint writes, plus fault-injecting
/// implementations used by the robustness tests.
pub mod fault {
    use std::fs;
    use std::io::{self, Write};
    use std::path::Path;

    /// The three filesystem operations `save_file` performs, in order.
    pub trait CheckpointIo {
        /// Create `path`, write `data` fully, and fsync it.
        fn write_file(&mut self, path: &Path, data: &[u8]) -> io::Result<()>;
        /// Atomically rename `from` onto `to`.
        fn rename(&mut self, from: &Path, to: &Path) -> io::Result<()>;
        /// Fsync the directory entry so the rename is durable.
        fn sync_dir(&mut self, dir: &Path) -> io::Result<()>;
    }

    /// The real filesystem.
    pub struct RealIo;

    impl CheckpointIo for RealIo {
        fn write_file(&mut self, path: &Path, data: &[u8]) -> io::Result<()> {
            let mut f = fs::File::create(path)?;
            f.write_all(data)?;
            f.sync_all()
        }

        fn rename(&mut self, from: &Path, to: &Path) -> io::Result<()> {
            fs::rename(from, to)
        }

        fn sync_dir(&mut self, dir: &Path) -> io::Result<()> {
            // Directory fsync is a durability nicety; not every platform
            // allows opening a directory, so fall back to a no-op there.
            match fs::File::open(dir) {
                Ok(d) => d.sync_all().or(Ok(())),
                Err(_) => Ok(()),
            }
        }
    }

    /// Scripted faults layered over [`RealIo`].
    #[derive(Default)]
    pub struct FaultyIo {
        /// Fail this many leading `write_file` calls with a transient
        /// (retryable) error before succeeding.
        pub transient_write_failures: u32,
        /// On the next `write_file`, persist only this many bytes and then
        /// fail hard — simulates a crash mid-write.
        pub partial_write_then_crash: Option<usize>,
        /// Flip this bit (byte offset * 8 + bit index, taken modulo the
        /// buffer length) in the written data — simulates silent media
        /// corruption.
        pub flip_bit: Option<u64>,
        /// Fail this many leading `rename` calls with a transient error.
        pub transient_rename_failures: u32,
        /// Observed operation counts, for assertions.
        pub writes: u32,
        pub renames: u32,
    }

    impl FaultyIo {
        fn transient(msg: &str) -> io::Error {
            io::Error::new(io::ErrorKind::Interrupted, msg.to_string())
        }
    }

    impl CheckpointIo for FaultyIo {
        fn write_file(&mut self, path: &Path, data: &[u8]) -> io::Result<()> {
            self.writes += 1;
            if self.transient_write_failures > 0 {
                self.transient_write_failures -= 1;
                return Err(Self::transient("injected transient write failure"));
            }
            if let Some(keep) = self.partial_write_then_crash.take() {
                let keep = keep.min(data.len());
                let mut f = fs::File::create(path)?;
                f.write_all(&data[..keep])?;
                f.sync_all()?;
                return Err(io::Error::other("injected crash after partial write"));
            }
            if let Some(bit) = self.flip_bit.take() {
                let mut corrupt = data.to_vec();
                if !corrupt.is_empty() {
                    let idx = (bit / 8) as usize % corrupt.len();
                    corrupt[idx] ^= 1 << (bit % 8);
                }
                return RealIo.write_file(path, &corrupt);
            }
            RealIo.write_file(path, data)
        }

        fn rename(&mut self, from: &Path, to: &Path) -> io::Result<()> {
            self.renames += 1;
            if self.transient_rename_failures > 0 {
                self.transient_rename_failures -= 1;
                return Err(Self::transient("injected transient rename failure"));
            }
            RealIo.rename(from, to)
        }

        fn sync_dir(&mut self, dir: &Path) -> io::Result<()> {
            RealIo.sync_dir(dir)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_store() -> ParamStore {
        let mut rng = StdRng::seed_from_u64(5);
        let mut s = ParamStore::new();
        let a = s.add(crate::init::uniform(3, 4, -1.0, 1.0, &mut rng));
        let b = s.add(crate::init::uniform(1, 2, -1.0, 1.0, &mut rng));
        // Take some optimizer steps so Adam state is non-trivial.
        for _ in 0..3 {
            s.zero_grads();
            s.accumulate_grad(a, &Tensor::full(3, 4, 0.1));
            s.accumulate_grad(b, &Tensor::full(1, 2, -0.2));
            s.adam_step(0.01);
        }
        s
    }

    fn stores_equal(a: &ParamStore, b: &ParamStore) -> bool {
        a.len() == b.len()
            && a.steps_taken() == b.steps_taken()
            && (0..a.len()).all(|i| {
                let id = crate::params::ParamId(i);
                a.checkpoint_views(id) == b.checkpoint_views(id)
            })
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard IEEE test vector.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_sliced_matches_bitwise_reference() {
        // The slicing-by-8 kernel must agree with the bitwise definition
        // at every length mod 8 (full chunks plus each remainder path).
        fn bitwise(data: &[u8]) -> u32 {
            let mut crc = 0xFFFF_FFFFu32;
            for &b in data {
                crc ^= b as u32;
                for _ in 0..8 {
                    let mask = (crc & 1).wrapping_neg();
                    crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
                }
            }
            !crc
        }
        // 0..64 exercises pure table paths; 64..257 mixes the clmul fold
        // (where available) with every remainder class; the larger sweep
        // covers multi-block folding with misaligned tails.
        let data: Vec<u8> = (0..4096u32)
            .map(|i| (i.wrapping_mul(97) >> 3) as u8)
            .collect();
        for len in (0..257).chain((257..data.len()).step_by(61)) {
            assert_eq!(crc32(&data[..len]), bitwise(&data[..len]), "len {len}");
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let s = sample_store();
        let restored = from_bytes(&to_bytes(&s)).unwrap();
        assert!(stores_equal(&s, &restored));
    }

    #[test]
    fn v1_buffers_still_load() {
        let s = sample_store();
        let v1 = to_bytes_v1(&s);
        assert_eq!(u32::from_le_bytes(v1[8..12].try_into().unwrap()), 1);
        let restored = from_bytes(&v1).unwrap();
        assert!(stores_equal(&s, &restored));
    }

    #[test]
    fn resumed_training_matches_uninterrupted() {
        // Train 3 + 3 steps with a save/load in the middle: identical to 6.
        let mut a = sample_store();
        let mut b = from_bytes(&to_bytes(&a)).unwrap();
        let id = crate::params::ParamId(0);
        for _ in 0..3 {
            for s in [&mut a, &mut b] {
                s.zero_grads();
                s.accumulate_grad(id, &Tensor::full(3, 4, 0.05));
                s.adam_step(0.01);
            }
        }
        assert_eq!(a.value(id), b.value(id));
    }

    #[test]
    fn bad_inputs_rejected() {
        assert_eq!(
            from_bytes(b"nonsense").unwrap_err(),
            CheckpointError::BadMagic
        );

        let mut truncated = to_bytes(&sample_store());
        truncated.truncate(truncated.len() - 5);
        assert!(matches!(
            from_bytes(&truncated).unwrap_err(),
            CheckpointError::ChecksumMismatch { .. }
        ));

        let mut versioned = to_bytes(&sample_store());
        versioned[8] = 99;
        assert_eq!(
            from_bytes(&versioned).unwrap_err(),
            CheckpointError::BadVersion(99)
        );

        // v1 truncation has no checksum to catch it, so it must surface as
        // a structural error instead.
        let mut v1 = to_bytes_v1(&sample_store());
        v1.truncate(v1.len() - 5);
        assert_eq!(from_bytes(&v1).unwrap_err(), CheckpointError::Truncated);
        let mut v1_extra = to_bytes_v1(&sample_store());
        v1_extra.extend_from_slice(&[0, 0, 0]);
        assert_eq!(
            from_bytes(&v1_extra).unwrap_err(),
            CheckpointError::TrailingBytes
        );
    }

    #[test]
    fn flipped_payload_byte_is_a_checksum_mismatch() {
        let mut data = to_bytes(&sample_store());
        let mid = data.len() / 2;
        data[mid] ^= 0x40;
        assert!(matches!(
            from_bytes(&data).unwrap_err(),
            CheckpointError::ChecksumMismatch { .. }
        ));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("halk_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.ckpt");
        let s = sample_store();
        save_file(&s, &path).unwrap();
        let restored = load_file(&path).unwrap();
        assert!(stores_equal(&s, &restored));
        // The temp sibling must not linger after a successful save.
        assert!(!temp_sibling(&path).exists());
    }

    #[test]
    fn transient_write_errors_are_retried() {
        let dir = std::env::temp_dir().join("halk_ckpt_retry");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.ckpt");
        let s = sample_store();
        let mut io = fault::FaultyIo {
            transient_write_failures: 2,
            ..Default::default()
        };
        let policy = RetryPolicy {
            max_attempts: 3,
            backoff: Duration::ZERO,
        };
        save_file_with(&s, &path, &policy, &mut io).unwrap();
        assert_eq!(io.writes, 3);
        assert!(stores_equal(&s, &load_file(&path).unwrap()));
    }

    #[test]
    fn retry_budget_is_bounded() {
        let dir = std::env::temp_dir().join("halk_ckpt_retry_budget");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.ckpt");
        let mut io = fault::FaultyIo {
            transient_write_failures: 10,
            ..Default::default()
        };
        let policy = RetryPolicy {
            max_attempts: 3,
            backoff: Duration::ZERO,
        };
        let err = save_file_with(&sample_store(), &path, &policy, &mut io).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::Interrupted);
        assert_eq!(io.writes, 3);
    }

    #[test]
    fn crash_mid_write_leaves_previous_checkpoint_intact() {
        let dir = std::env::temp_dir().join("halk_ckpt_crash");
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.ckpt");

        let old = sample_store();
        save_file(&old, &path).unwrap();

        let mut newer = sample_store();
        newer.zero_grads();
        newer.accumulate_grad(crate::params::ParamId(0), &Tensor::full(3, 4, 0.3));
        newer.adam_step(0.05);

        let mut io = fault::FaultyIo {
            partial_write_then_crash: Some(10),
            ..Default::default()
        };
        let policy = RetryPolicy {
            max_attempts: 1,
            backoff: Duration::ZERO,
        };
        save_file_with(&newer, &path, &policy, &mut io).unwrap_err();
        // The destination still holds the complete previous checkpoint.
        assert!(stores_equal(&old, &load_file(&path).unwrap()));
    }

    #[test]
    fn bit_flip_on_disk_is_detected_at_load() {
        let dir = std::env::temp_dir().join("halk_ckpt_flip");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.ckpt");
        let mut io = fault::FaultyIo {
            flip_bit: Some(997),
            ..Default::default()
        };
        let policy = RetryPolicy {
            max_attempts: 1,
            backoff: Duration::ZERO,
        };
        save_file_with(&sample_store(), &path, &policy, &mut io).unwrap();
        let err = load_file(&path).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
    }
}
