//! Binary checkpoints for [`ParamStore`].
//!
//! A compact little-endian format carrying every parameter tensor plus the
//! full Adam state, so training can pause/resume exactly and trained models
//! can ship without the training graph. JSON (serde) stays available for
//! debugging; this format is ~4 bytes/scalar instead of ~12.
//!
//! Layout: `magic "HALKCKPT" | version u32 | step u64 | n_params u32 |`
//! then per parameter `rows u32 | cols u32 | values f32* | grad-less Adam
//! m f32* | v f32*`.

use crate::params::ParamStore;
use crate::tensor::Tensor;
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;
use std::io;
use std::path::Path;

const MAGIC: &[u8; 8] = b"HALKCKPT";
const VERSION: u32 = 1;

/// Errors produced while decoding a checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckpointError {
    /// The buffer does not start with the checkpoint magic.
    BadMagic,
    /// Unknown format version.
    BadVersion(u32),
    /// The buffer ended before the declared content.
    Truncated,
}

impl fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CheckpointError::BadMagic => write!(f, "not a HaLk checkpoint (bad magic)"),
            CheckpointError::BadVersion(v) => write!(f, "unsupported checkpoint version {v}"),
            CheckpointError::Truncated => write!(f, "checkpoint truncated"),
        }
    }
}

impl std::error::Error for CheckpointError {}

/// Serializes a store (values + optimizer state) to bytes.
pub fn to_bytes(store: &ParamStore) -> Bytes {
    let mut buf = BytesMut::with_capacity(16 + store.num_scalars() * 12);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);
    buf.put_u64_le(store.steps_taken());
    buf.put_u32_le(store.len() as u32);
    for i in 0..store.len() {
        let id = crate::params::ParamId(i);
        let (value, m, v) = store.checkpoint_views(id);
        buf.put_u32_le(value.rows as u32);
        buf.put_u32_le(value.cols as u32);
        for &x in &value.data {
            buf.put_f32_le(x);
        }
        for &x in &m.data {
            buf.put_f32_le(x);
        }
        for &x in &v.data {
            buf.put_f32_le(x);
        }
    }
    buf.freeze()
}

/// Restores a store from bytes produced by [`to_bytes`].
pub fn from_bytes(mut buf: &[u8]) -> Result<ParamStore, CheckpointError> {
    if buf.remaining() < 8 || &buf[..8] != MAGIC {
        return Err(CheckpointError::BadMagic);
    }
    buf.advance(8);
    if buf.remaining() < 4 {
        return Err(CheckpointError::Truncated);
    }
    let version = buf.get_u32_le();
    if version != VERSION {
        return Err(CheckpointError::BadVersion(version));
    }
    if buf.remaining() < 12 {
        return Err(CheckpointError::Truncated);
    }
    let step = buf.get_u64_le();
    let n_params = buf.get_u32_le() as usize;

    let mut store = ParamStore::new();
    for _ in 0..n_params {
        if buf.remaining() < 8 {
            return Err(CheckpointError::Truncated);
        }
        let rows = buf.get_u32_le() as usize;
        let cols = buf.get_u32_le() as usize;
        let n = rows * cols;
        if buf.remaining() < n * 12 {
            return Err(CheckpointError::Truncated);
        }
        let read_tensor = |buf: &mut &[u8]| {
            let data: Vec<f32> = (0..n).map(|_| buf.get_f32_le()).collect();
            Tensor::from_vec(rows, cols, data)
        };
        let value = read_tensor(&mut buf);
        let m = read_tensor(&mut buf);
        let v = read_tensor(&mut buf);
        let id = store.add(value);
        store.restore_adam_state(id, m, v);
    }
    store.restore_step(step);
    Ok(store)
}

/// Writes a checkpoint file.
pub fn save_file(store: &ParamStore, path: &Path) -> io::Result<()> {
    std::fs::write(path, to_bytes(store))
}

/// Reads a checkpoint file.
pub fn load_file(path: &Path) -> io::Result<ParamStore> {
    let data = std::fs::read(path)?;
    from_bytes(&data).map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_store() -> ParamStore {
        let mut rng = StdRng::seed_from_u64(5);
        let mut s = ParamStore::new();
        let a = s.add(crate::init::uniform(3, 4, -1.0, 1.0, &mut rng));
        let b = s.add(crate::init::uniform(1, 2, -1.0, 1.0, &mut rng));
        // Take some optimizer steps so Adam state is non-trivial.
        for _ in 0..3 {
            s.zero_grads();
            s.accumulate_grad(a, &Tensor::full(3, 4, 0.1));
            s.accumulate_grad(b, &Tensor::full(1, 2, -0.2));
            s.adam_step(0.01);
        }
        s
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let s = sample_store();
        let restored = from_bytes(&to_bytes(&s)).unwrap();
        assert_eq!(restored.len(), s.len());
        assert_eq!(restored.steps_taken(), s.steps_taken());
        for i in 0..s.len() {
            let id = crate::params::ParamId(i);
            assert_eq!(restored.value(id), s.value(id));
            let (_, m1, v1) = s.checkpoint_views(id);
            let (_, m2, v2) = restored.checkpoint_views(id);
            assert_eq!(m1, m2);
            assert_eq!(v1, v2);
        }
    }

    #[test]
    fn resumed_training_matches_uninterrupted() {
        // Train 3 + 3 steps with a save/load in the middle: identical to 6.
        let mut a = sample_store();
        let mut b = from_bytes(&to_bytes(&a)).unwrap();
        let id = crate::params::ParamId(0);
        for _ in 0..3 {
            for s in [&mut a, &mut b] {
                s.zero_grads();
                s.accumulate_grad(id, &Tensor::full(3, 4, 0.05));
                s.adam_step(0.01);
            }
        }
        assert_eq!(a.value(id), b.value(id));
    }

    #[test]
    fn bad_inputs_rejected() {
        assert_eq!(from_bytes(b"nonsense").unwrap_err(), CheckpointError::BadMagic);
        let mut data = to_bytes(&sample_store()).to_vec();
        data.truncate(data.len() - 5);
        assert_eq!(from_bytes(&data).unwrap_err(), CheckpointError::Truncated);
        let mut versioned = to_bytes(&sample_store()).to_vec();
        versioned[8] = 99;
        assert_eq!(
            from_bytes(&versioned).unwrap_err(),
            CheckpointError::BadVersion(99)
        );
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("halk_ckpt_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.ckpt");
        let s = sample_store();
        save_file(&s, &path).unwrap();
        let restored = load_file(&path).unwrap();
        assert_eq!(restored.value(crate::params::ParamId(0)), s.value(crate::params::ParamId(0)));
    }
}
