//! Dense row-major `f32` matrices.
//!
//! Everything the models manipulate is a 2-D tensor: a batch of embedding
//! vectors is `B×d`, an MLP weight is `in×out`, a scalar loss is `1×1`.
//! Keeping a single concrete layout (row-major `Vec<f32>`) keeps the hot
//! loops simple enough for the compiler to vectorize and avoids any generic
//! dispatch in the autodiff interior.

use serde::{Deserialize, Serialize};

/// A dense row-major matrix of `f32`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tensor {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row-major storage, `rows * cols` long.
    pub data: Vec<f32>,
}

impl Tensor {
    /// All-zeros tensor.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Tensor filled with a constant.
    pub fn full(rows: usize, cols: usize, value: f32) -> Self {
        Self {
            rows,
            cols,
            data: vec![value; rows * cols],
        }
    }

    /// Builds a tensor from row-major data.
    ///
    /// # Panics
    /// If `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "tensor shape {rows}x{cols} does not match {} elements",
            data.len()
        );
        Self { rows, cols, data }
    }

    /// A `1×n` row tensor.
    pub fn row_vec(data: Vec<f32>) -> Self {
        let cols = data.len();
        Self::from_vec(1, cols, data)
    }

    /// A `1×1` scalar tensor.
    pub fn scalar(v: f32) -> Self {
        Self::from_vec(1, 1, vec![v])
    }

    /// Total number of elements.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// True when the tensor has no elements.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Element at `(r, c)`.
    #[inline]
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c]
    }

    /// Sets element at `(r, c)`.
    #[inline]
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        debug_assert!(r < self.rows && c < self.cols);
        self.data[r * self.cols + c] = v;
    }

    /// Immutable view of row `r`.
    #[inline]
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable view of row `r`.
    #[inline]
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// The single value of a `1×1` tensor.
    ///
    /// # Panics
    /// If the tensor is not `1×1`.
    pub fn item(&self) -> f32 {
        assert_eq!(
            (self.rows, self.cols),
            (1, 1),
            "item() on non-scalar tensor"
        );
        self.data[0]
    }

    /// Applies `f` elementwise, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Combines two same-shape tensors elementwise.
    ///
    /// # Panics
    /// If shapes differ.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        self.assert_same_shape(other);
        Tensor {
            rows: self.rows,
            cols: self.cols,
            data: self
                .data
                .iter()
                .zip(&other.data)
                .map(|(&a, &b)| f(a, b))
                .collect(),
        }
    }

    /// In-place `self += other` (same shape).
    pub fn add_assign(&mut self, other: &Tensor) {
        self.assert_same_shape(other);
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// In-place `self += scale * other` (same shape).
    pub fn add_scaled_assign(&mut self, other: &Tensor, scale: f32) {
        self.assert_same_shape(other);
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += scale * b;
        }
    }

    /// In-place multiply by a scalar.
    pub fn scale_assign(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Resets every element to zero, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Matrix product `self · other` (`m×k · k×n → m×n`).
    ///
    /// # Panics
    /// If inner dimensions disagree.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let (m, n) = (self.rows, other.cols);
        let mut out = Tensor::zeros(m, n);
        self.matmul_into(other, &mut out.data);
        out
    }

    /// Matrix product `self · other` accumulated into a caller-supplied
    /// buffer, which must already hold `m×n` zeros. Lets the autodiff tape
    /// reuse pooled allocations for its heaviest op.
    ///
    /// # Panics
    /// If inner dimensions disagree or `out` has the wrong length.
    pub fn matmul_into(&self, other: &Tensor, out: &mut [f32]) {
        assert_eq!(
            self.cols, other.rows,
            "matmul {}x{} · {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let (m, k, n) = (self.rows, self.cols, other.cols);
        assert_eq!(out.len(), m * n, "matmul_into output length");
        // ikj loop order: the inner loop streams both `other` and `out`
        // rows contiguously, which the autovectorizer handles well. The
        // inner loop is kept branch-free on purpose: skipping `a == 0.0`
        // terms defeats vectorization on dense data (see benches/ops.rs).
        for i in 0..m {
            let out_row = &mut out[i * n..(i + 1) * n];
            for kk in 0..k {
                let a = self.data[i * k + kk];
                let b_row = &other.data[kk * n..(kk + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
    }

    /// `selfᵀ · other` without materializing the transpose
    /// (`k×m ᵀ· k×n → m×n`). Used by the backward pass for weight grads.
    pub fn t_matmul(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.rows, other.rows, "t_matmul row mismatch");
        let (k, m, n) = (self.rows, self.cols, other.cols);
        let mut out = Tensor::zeros(m, n);
        for kk in 0..k {
            let a_row = &self.data[kk * m..(kk + 1) * m];
            let b_row = &other.data[kk * n..(kk + 1) * n];
            for (i, &a) in a_row.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * n..(i + 1) * n];
                for (o, &b) in out_row.iter_mut().zip(b_row) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self · otherᵀ` without materializing the transpose
    /// (`m×k · n×k ᵀ→ m×n`). Used by the backward pass for input grads.
    pub fn matmul_t(&self, other: &Tensor) -> Tensor {
        assert_eq!(self.cols, other.cols, "matmul_t col mismatch");
        let (m, k, n) = (self.rows, self.cols, other.rows);
        let mut out = Tensor::zeros(m, n);
        for i in 0..m {
            let a_row = &self.data[i * k..(i + 1) * k];
            for j in 0..n {
                let b_row = &other.data[j * k..(j + 1) * k];
                let mut acc = 0.0;
                for (&a, &b) in a_row.iter().zip(b_row) {
                    acc += a * b;
                }
                out.data[i * n + j] = acc;
            }
        }
        out
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Euclidean norm of all elements.
    pub fn l2_norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Maximum absolute element (0 for empty tensors).
    pub fn max_abs(&self) -> f32 {
        self.data.iter().fold(0.0f32, |m, &x| m.max(x.abs()))
    }

    fn assert_same_shape(&self, other: &Tensor) {
        assert_eq!(
            (self.rows, self.cols),
            (other.rows, other.cols),
            "shape mismatch {}x{} vs {}x{}",
            self.rows,
            self.cols,
            other.rows,
            other.cols
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_access() {
        let mut t = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        assert_eq!(t.get(0, 2), 3.0);
        assert_eq!(t.get(1, 0), 4.0);
        t.set(1, 1, 9.0);
        assert_eq!(t.row(1), &[4.0, 9.0, 6.0]);
        assert_eq!(t.len(), 6);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn from_vec_shape_checked() {
        let _ = Tensor::from_vec(2, 2, vec![1.0; 3]);
    }

    #[test]
    fn scalar_item() {
        assert_eq!(Tensor::scalar(3.5).item(), 3.5);
    }

    #[test]
    #[should_panic(expected = "non-scalar")]
    fn item_rejects_matrix() {
        let _ = Tensor::zeros(2, 2).item();
    }

    #[test]
    fn matmul_known_values() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(3, 2, vec![7., 8., 9., 10., 11., 12.]);
        let c = a.matmul(&b);
        assert_eq!(c.data, vec![58., 64., 139., 154.]);
    }

    #[test]
    fn matmul_identity() {
        let a = Tensor::from_vec(2, 2, vec![1., 2., 3., 4.]);
        let i = Tensor::from_vec(2, 2, vec![1., 0., 0., 1.]);
        assert_eq!(a.matmul(&i).data, a.data);
    }

    #[test]
    fn t_matmul_matches_explicit_transpose() {
        let a = Tensor::from_vec(3, 2, vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(3, 2, vec![1., 1., 0., 2., 3., 1.]);
        // aᵀ·b computed two ways.
        let fast = a.t_matmul(&b);
        let mut at = Tensor::zeros(2, 3);
        for r in 0..3 {
            for c in 0..2 {
                at.set(c, r, a.get(r, c));
            }
        }
        let slow = at.matmul(&b);
        assert_eq!(fast.data, slow.data);
    }

    #[test]
    fn matmul_t_matches_explicit_transpose() {
        let a = Tensor::from_vec(2, 3, vec![1., 2., 3., 4., 5., 6.]);
        let b = Tensor::from_vec(4, 3, vec![1., 0., 1., 2., 1., 0., 0., 1., 1., 1., 1., 1.]);
        let fast = a.matmul_t(&b);
        let mut bt = Tensor::zeros(3, 4);
        for r in 0..4 {
            for c in 0..3 {
                bt.set(c, r, b.get(r, c));
            }
        }
        let slow = a.matmul(&bt);
        assert_eq!(fast.data, slow.data);
    }

    #[test]
    fn map_and_zip_map() {
        let a = Tensor::from_vec(1, 3, vec![1., -2., 3.]);
        assert_eq!(a.map(f32::abs).data, vec![1., 2., 3.]);
        let b = Tensor::from_vec(1, 3, vec![10., 20., 30.]);
        assert_eq!(a.zip_map(&b, |x, y| x + y).data, vec![11., 18., 33.]);
    }

    #[test]
    fn accumulate_ops() {
        let mut a = Tensor::full(1, 2, 1.0);
        let b = Tensor::full(1, 2, 2.0);
        a.add_assign(&b);
        assert_eq!(a.data, vec![3.0, 3.0]);
        a.add_scaled_assign(&b, 0.5);
        assert_eq!(a.data, vec![4.0, 4.0]);
        a.scale_assign(0.25);
        assert_eq!(a.data, vec![1.0, 1.0]);
        a.fill_zero();
        assert_eq!(a.data, vec![0.0, 0.0]);
    }

    #[test]
    fn norms() {
        let a = Tensor::from_vec(1, 2, vec![3.0, -4.0]);
        assert!((a.l2_norm() - 5.0).abs() < 1e-6);
        assert_eq!(a.max_abs(), 4.0);
        assert_eq!(a.sum(), -1.0);
    }
}
