//! Weight initializers.
//!
//! The paper initializes entity and relation embeddings from a uniform
//! distribution (§IV-A) and uses standard MLPs; we provide the matching
//! uniform initializer plus Xavier-uniform for layer weights.

use crate::tensor::Tensor;
use rand::Rng;

/// Uniform `U(lo, hi)` initializer.
pub fn uniform(rows: usize, cols: usize, lo: f32, hi: f32, rng: &mut impl Rng) -> Tensor {
    Tensor::from_vec(
        rows,
        cols,
        (0..rows * cols).map(|_| rng.gen_range(lo..hi)).collect(),
    )
}

/// Xavier/Glorot uniform: `U(−a, a)` with `a = sqrt(6 / (fan_in + fan_out))`.
pub fn xavier_uniform(fan_in: usize, fan_out: usize, rng: &mut impl Rng) -> Tensor {
    let a = (6.0 / (fan_in + fan_out) as f32).sqrt();
    uniform(fan_in, fan_out, -a, a, rng)
}

/// Uniform angles in `[0, 2π)` — the natural initializer for point
/// embeddings on the circle.
pub fn uniform_angles(rows: usize, cols: usize, rng: &mut impl Rng) -> Tensor {
    uniform(rows, cols, 0.0, std::f32::consts::TAU, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn uniform_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        let t = uniform(10, 10, -0.5, 0.5, &mut rng);
        assert!(t.data.iter().all(|&x| (-0.5..0.5).contains(&x)));
    }

    #[test]
    fn xavier_scale_shrinks_with_width() {
        let mut rng = StdRng::seed_from_u64(7);
        let narrow = xavier_uniform(4, 4, &mut rng);
        let wide = xavier_uniform(400, 400, &mut rng);
        assert!(wide.max_abs() < narrow.max_abs());
    }

    #[test]
    fn angles_cover_circle() {
        let mut rng = StdRng::seed_from_u64(9);
        let t = uniform_angles(100, 4, &mut rng);
        assert!(t
            .data
            .iter()
            .all(|&x| (0.0..std::f32::consts::TAU).contains(&x)));
        // With 400 samples we should see both halves of the circle.
        assert!(t.data.iter().any(|&x| x < std::f32::consts::PI));
        assert!(t.data.iter().any(|&x| x > std::f32::consts::PI));
    }

    #[test]
    fn deterministic_under_seed() {
        let a = uniform(3, 3, 0.0, 1.0, &mut StdRng::seed_from_u64(1));
        let b = uniform(3, 3, 0.0, 1.0, &mut StdRng::seed_from_u64(1));
        assert_eq!(a.data, b.data);
    }
}
