//! Layers: linear maps and the multi-layer perceptrons every HaLk operator
//! is built from (Eq. 2, 7, 9, 12, 14 of the paper all say "MLP").

use crate::init;
use crate::params::{ParamId, ParamStore};
use crate::tape::{Tape, Var};
use rand::Rng;

/// Activation functions available between MLP layers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Act {
    /// Rectified linear unit (the default hidden activation).
    Relu,
    /// Hyperbolic tangent.
    Tanh,
    /// Logistic sigmoid.
    Sigmoid,
    /// Identity (no non-linearity).
    None,
}

impl Act {
    /// Applies the activation on the tape.
    pub fn apply(self, tape: &mut Tape, x: Var) -> Var {
        match self {
            Act::Relu => tape.relu(x),
            Act::Tanh => tape.tanh(x),
            Act::Sigmoid => tape.sigmoid(x),
            Act::None => x,
        }
    }
}

/// A dense affine layer `y = x·W + b`.
#[derive(Debug, Clone)]
pub struct Linear {
    /// Weight parameter, `in_dim × out_dim`.
    pub w: ParamId,
    /// Bias parameter, `1 × out_dim`.
    pub b: ParamId,
    /// Input width.
    pub in_dim: usize,
    /// Output width.
    pub out_dim: usize,
}

impl Linear {
    /// Creates a layer with Xavier-uniform weights and zero bias.
    pub fn new(store: &mut ParamStore, in_dim: usize, out_dim: usize, rng: &mut impl Rng) -> Self {
        let w = store.add(init::xavier_uniform(in_dim, out_dim, rng));
        let b = store.add(crate::tensor::Tensor::zeros(1, out_dim));
        Self {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// [`Linear::new`] with zeroed weights: registers the same shapes in
    /// the same order without paying the Xavier RNG draws. For loaders
    /// that immediately overwrite every value (snapshot `from_parts`),
    /// where the init would be allocated and thrown away.
    pub fn zeroed(store: &mut ParamStore, in_dim: usize, out_dim: usize) -> Self {
        let w = store.add(crate::tensor::Tensor::zeros(in_dim, out_dim));
        let b = store.add(crate::tensor::Tensor::zeros(1, out_dim));
        Self {
            w,
            b,
            in_dim,
            out_dim,
        }
    }

    /// Forward pass for a `B × in_dim` input.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: Var) -> Var {
        let w = tape.param(store, self.w);
        let b = tape.param(store, self.b);
        let xw = tape.matmul(x, w);
        tape.add_row(xw, b)
    }
}

/// A multi-layer perceptron: `n_hidden` hidden layers with a fixed hidden
/// width and activation, followed by a linear output layer.
#[derive(Debug, Clone)]
pub struct Mlp {
    layers: Vec<Linear>,
    act: Act,
}

impl Mlp {
    /// Builds an MLP `in_dim → hidden (×n_hidden) → out_dim`.
    ///
    /// `n_hidden == 0` degenerates to a single linear layer.
    pub fn new(
        store: &mut ParamStore,
        in_dim: usize,
        hidden: usize,
        out_dim: usize,
        n_hidden: usize,
        act: Act,
        rng: &mut impl Rng,
    ) -> Self {
        let mut layers = Vec::with_capacity(n_hidden + 1);
        let mut cur = in_dim;
        for _ in 0..n_hidden {
            layers.push(Linear::new(store, cur, hidden, rng));
            cur = hidden;
        }
        layers.push(Linear::new(store, cur, out_dim, rng));
        Self { layers, act }
    }

    /// [`Mlp::new`] with zeroed layers ([`Linear::zeroed`]): identical
    /// parameter registration order and shapes, no RNG cost. Only sound
    /// when every registered value is subsequently replaced.
    pub fn zeroed(
        store: &mut ParamStore,
        in_dim: usize,
        hidden: usize,
        out_dim: usize,
        n_hidden: usize,
        act: Act,
    ) -> Self {
        let mut layers = Vec::with_capacity(n_hidden + 1);
        let mut cur = in_dim;
        for _ in 0..n_hidden {
            layers.push(Linear::zeroed(store, cur, hidden));
            cur = hidden;
        }
        layers.push(Linear::zeroed(store, cur, out_dim));
        Self { layers, act }
    }

    /// Forward pass; the activation is applied after every layer except the
    /// last, which stays linear so downstream squashers (`g`, `σ`) control
    /// the output range.
    pub fn forward(&self, tape: &mut Tape, store: &ParamStore, x: Var) -> Var {
        let mut h = x;
        for (i, layer) in self.layers.iter().enumerate() {
            h = layer.forward(tape, store, h);
            if i + 1 < self.layers.len() {
                h = self.act.apply(tape, h);
            }
        }
        h
    }

    /// Scales the final layer's weights and bias by `factor`. With a small
    /// factor the MLP starts as (approximately) the zero function — the
    /// right initialization when its output is a *residual correction* on
    /// top of a closed-form seed (rotation, complement), so training starts
    /// from the geometric prior instead of noise.
    pub fn scale_last_layer(&self, store: &mut ParamStore, factor: f32) {
        let last = self.layers.last().expect("mlp has at least one layer");
        store.value_mut(last.w).scale_assign(factor);
        store.value_mut(last.b).scale_assign(factor);
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.layers
            .last()
            .expect("mlp has at least one layer")
            .out_dim
    }

    /// Input width.
    pub fn in_dim(&self) -> usize {
        self.layers
            .first()
            .expect("mlp has at least one layer")
            .in_dim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tensor::Tensor;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn linear_shapes() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut s = ParamStore::new();
        let l = Linear::new(&mut s, 3, 5, &mut rng);
        let mut t = Tape::new();
        let x = t.input(Tensor::zeros(4, 3));
        let y = l.forward(&mut t, &s, x);
        assert_eq!((t.value(y).rows, t.value(y).cols), (4, 5));
    }

    #[test]
    fn mlp_shapes_and_depth() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut s = ParamStore::new();
        let m = Mlp::new(&mut s, 4, 8, 2, 2, Act::Relu, &mut rng);
        assert_eq!(m.in_dim(), 4);
        assert_eq!(m.out_dim(), 2);
        let mut t = Tape::new();
        let x = t.input(Tensor::zeros(3, 4));
        let y = m.forward(&mut t, &s, x);
        assert_eq!((t.value(y).rows, t.value(y).cols), (3, 2));
        // 2 hidden + 1 output layer → 6 parameter tensors.
        assert_eq!(s.len(), 6);
    }

    #[test]
    fn mlp_zero_hidden_is_linear() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut s = ParamStore::new();
        let m = Mlp::new(&mut s, 3, 99, 3, 0, Act::Relu, &mut rng);
        assert_eq!(s.len(), 2); // one weight + one bias
        let mut t = Tape::new();
        let x = t.input(Tensor::zeros(1, 3));
        let y = m.forward(&mut t, &s, x);
        assert_eq!(t.value(y).cols, 3);
    }

    #[test]
    fn mlp_can_fit_xor() {
        // The classic non-linear sanity check: a 2-2-1 MLP with tanh learns
        // XOR, proving gradients flow through the whole stack.
        let mut rng = StdRng::seed_from_u64(42);
        let mut s = ParamStore::new();
        let m = Mlp::new(&mut s, 2, 8, 1, 1, Act::Tanh, &mut rng);
        let xs = Tensor::from_vec(4, 2, vec![0., 0., 0., 1., 1., 0., 1., 1.]);
        let ys = Tensor::from_vec(4, 1, vec![0., 1., 1., 0.]);
        let mut final_loss = f32::MAX;
        for _ in 0..800 {
            let mut t = Tape::new();
            let x = t.input(xs.clone());
            let target = t.input(ys.clone());
            let logits = m.forward(&mut t, &s, x);
            let pred = t.sigmoid(logits);
            let diff = t.sub(pred, target);
            let sq = t.mul(diff, diff);
            let loss = t.mean_all(sq);
            final_loss = t.value(loss).item();
            s.zero_grads();
            t.backward(loss, &mut s);
            s.adam_step(0.05);
        }
        assert!(final_loss < 0.05, "xor loss stayed at {final_loss}");
    }

    #[test]
    fn activations_apply() {
        let mut t = Tape::new();
        let x = t.input(Tensor::from_vec(1, 2, vec![-1.0, 1.0]));
        let r = Act::Relu.apply(&mut t, x);
        assert_eq!(t.value(r).data, vec![0.0, 1.0]);
        let th = Act::Tanh.apply(&mut t, x);
        assert!((t.value(th).data[1] - 1f32.tanh()).abs() < 1e-6);
        let sg = Act::Sigmoid.apply(&mut t, x);
        assert!(t.value(sg).data[0] < 0.5 && t.value(sg).data[1] > 0.5);
        let id = Act::None.apply(&mut t, x);
        assert_eq!(id, x);
    }
}
