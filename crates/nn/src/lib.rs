//! Minimal neural-network substrate for the HaLk reproduction.
//!
//! The paper trains its operators with PyTorch on GPUs; the Rust ecosystem
//! offers no comparable mature framework, so this crate implements the small
//! slice actually needed — dense `f32` tensors, a define-by-run reverse-mode
//! autodiff [`tape::Tape`], [`layers::Mlp`] stacks, Adam — from scratch, with
//! finite-difference [`gradcheck`] coverage for every op.
//!
//! Design points (see DESIGN.md §3):
//! * ops are a closed enum, so backward is a match loop with no dynamic
//!   dispatch or boxed closures;
//! * parameters live in a persistent [`params::ParamStore`]; tapes are
//!   cheap per-batch objects; embedding lookups ([`tape::Tape::gather`])
//!   scatter gradients sparsely;
//! * everything is deterministic under a seeded `rand::rngs::StdRng`.

pub mod checkpoint;
pub mod gradcheck;
pub mod init;
pub mod layers;
pub mod params;
pub mod tape;
pub mod tensor;

pub use layers::{Act, Linear, Mlp};
pub use params::{GradBuffer, GradSink, ParamId, ParamStore};
pub use tape::{Tape, Var};
pub use tensor::Tensor;
