//! Property tests for the checkpoint codec: no input — valid, corrupted or
//! random — may panic the decoder, and every single-byte corruption of a v2
//! buffer is *detected* (typed error), never silently accepted.

use halk_nn::checkpoint::{from_bytes, to_bytes, to_bytes_v1, CheckpointError};
use halk_nn::{ParamStore, Tensor};
use proptest::prelude::*;

/// Builds a small store whose shape and contents are driven by the strategy
/// inputs, then runs a few Adam steps so the optimizer state is non-trivial.
fn build_store(rows: usize, cols: usize, fill: f32, steps: u8) -> ParamStore {
    let mut store = ParamStore::new();
    let a = store.add(Tensor::full(rows, cols, fill));
    let b = store.add(Tensor::from_vec(
        1,
        cols,
        (0..cols).map(|c| fill + c as f32).collect(),
    ));
    for s in 0..steps {
        let g = Tensor::full(rows, cols, 0.1 + s as f32 * 0.01);
        store.accumulate_grad(a, &g);
        store.accumulate_grad(b, &Tensor::full(1, cols, 0.2));
        store.adam_step(1e-2);
        store.zero_grads();
    }
    store
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any single-byte corruption of a valid v2 buffer yields a typed
    /// `CheckpointError` — never a panic, never a silently-wrong store.
    #[test]
    fn single_byte_corruption_is_always_detected(
        rows in 1usize..5,
        cols in 1usize..5,
        fill in -2.0f32..2.0,
        steps in 0u8..4,
        pos_seed in any::<u64>(),
        delta in 1u16..256,
    ) {
        let store = build_store(rows, cols, fill, steps);
        let buf = to_bytes(&store);
        prop_assert!(from_bytes(&buf).is_ok());

        let mut corrupted = buf.clone();
        let pos = (pos_seed % buf.len() as u64) as usize;
        corrupted[pos] = corrupted[pos].wrapping_add(delta as u8); // delta in 1..=255: always a real change
        let err = from_bytes(&corrupted);
        prop_assert!(err.is_err(), "corruption at byte {pos} went undetected");
        // The error formats without panicking, too.
        let _ = format!("{}", err.unwrap_err());
    }

    /// Truncating a v2 buffer anywhere is also detected.
    #[test]
    fn truncation_is_always_detected(
        rows in 1usize..4,
        cols in 1usize..4,
        cut_seed in any::<u64>(),
    ) {
        let store = build_store(rows, cols, 0.5, 2);
        let buf = to_bytes(&store);
        let cut = (cut_seed % buf.len() as u64) as usize; // 0..len-1: always shorter
        prop_assert!(from_bytes(&buf[..cut]).is_err());
    }

    /// Arbitrary byte soup never panics the decoder.
    #[test]
    fn random_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = from_bytes(&bytes);
    }

    /// Version-1 buffers (no trailing CRC) still load and round-trip the
    /// parameter values and optimizer step counter.
    #[test]
    fn v1_buffers_still_load(
        rows in 1usize..5,
        cols in 1usize..5,
        fill in -2.0f32..2.0,
        steps in 0u8..4,
    ) {
        let store = build_store(rows, cols, fill, steps);
        let v1 = to_bytes_v1(&store);
        let restored = from_bytes(&v1).expect("v1 must stay readable");
        prop_assert!(restored.same_shapes(&store));
        prop_assert_eq!(restored.steps_taken(), store.steps_taken());
        prop_assert_eq!(to_bytes(&restored), to_bytes(&store));
    }
}

#[test]
fn corruption_error_is_typed_not_stringly() {
    let store = build_store(2, 3, 1.0, 1);
    let mut buf = to_bytes(&store);
    let last = buf.len() - 1;
    buf[last] ^= 0xFF; // flip inside the CRC itself
    match from_bytes(&buf) {
        Err(CheckpointError::ChecksumMismatch { stored, computed }) => {
            assert_ne!(stored, computed);
        }
        other => panic!("expected ChecksumMismatch, got {other:?}"),
    }
}
