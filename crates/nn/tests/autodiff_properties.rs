//! Property-based gradient checks: every differentiable tape op is verified
//! against central finite differences on random inputs. This is the
//! substrate-level guarantee that lets the model crates trust backward()
//! without per-equation derivations.

use halk_nn::gradcheck::check_gradients;
use halk_nn::tensor::Tensor;
use halk_nn::{ParamStore, Tape, Var};
use proptest::prelude::*;

/// Values kept away from regions where f32 finite differences are unreliable
/// (saturation, kinks, poles).
fn smooth_vals(n: usize) -> impl Strategy<Value = Vec<f32>> {
    prop::collection::vec(
        (-2.0f32..2.0).prop_filter("away from relu/abs kink", |x| x.abs() > 0.05),
        n,
    )
}

fn store_with(vals: &[f32], rows: usize, cols: usize) -> (ParamStore, halk_nn::ParamId) {
    let mut s = ParamStore::new();
    let id = s.add(Tensor::from_vec(rows, cols, vals.to_vec()));
    (s, id)
}

fn assert_grad_ok(
    mut store: ParamStore,
    id: halk_nn::ParamId,
    f: impl Fn(&mut Tape, &ParamStore) -> Var,
) -> Result<(), TestCaseError> {
    let r = check_gradients(&mut store, &[id], 1e-3, f);
    prop_assert!(r.max_rel_err < 3e-2, "rel err {}", r.max_rel_err);
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn grad_unary_chain(vals in smooth_vals(6)) {
        let (s, id) = store_with(&vals, 2, 3);
        assert_grad_ok(s, id, |t, s| {
            let x = t.param(s, id);
            let a = t.tanh(x);
            let b = t.sin(a);
            let c = t.sigmoid(b);
            t.mean_all(c)
        })?;
    }

    #[test]
    fn grad_cos_exp(vals in smooth_vals(4)) {
        let (s, id) = store_with(&vals, 1, 4);
        assert_grad_ok(s, id, |t, s| {
            let x = t.param(s, id);
            let a = t.cos(x);
            let b = t.exp(a);
            t.sum_all(b)
        })?;
    }

    #[test]
    fn grad_softplus_abs(vals in smooth_vals(4)) {
        let (s, id) = store_with(&vals, 2, 2);
        assert_grad_ok(s, id, |t, s| {
            let x = t.param(s, id);
            let a = t.abs(x);
            let b = t.softplus(a);
            t.mean_all(b)
        })?;
    }

    #[test]
    fn grad_binary_ops(vals in smooth_vals(4), other in smooth_vals(4)) {
        let (s, id) = store_with(&vals, 2, 2);
        let o = Tensor::from_vec(2, 2, other.iter().map(|x| x + 3.0).collect());
        assert_grad_ok(s, id, move |t, s| {
            let x = t.param(s, id);
            let c = t.input(o.clone());
            let a = t.mul(x, c);
            let b = t.div(a, c);
            let d = t.sub(b, c);
            let e = t.add(d, x);
            t.mean_all(e)
        })?;
    }

    #[test]
    fn grad_matmul(vals in smooth_vals(6)) {
        let (s, id) = store_with(&vals, 2, 3);
        assert_grad_ok(s, id, |t, s| {
            let w = t.param(s, id);
            let x = t.input(Tensor::from_vec(2, 2, vec![0.5, -1.0, 1.5, 0.3]));
            let y = t.matmul(x, w);
            let sq = t.mul(y, y);
            t.mean_all(sq)
        })?;
    }

    #[test]
    fn grad_broadcast_rows(vals in smooth_vals(3)) {
        let (s, id) = store_with(&vals, 1, 3);
        assert_grad_ok(s, id, |t, s| {
            let row = t.param(s, id);
            let x = t.input(Tensor::from_vec(2, 3, vec![1., 2., 3., -1., 0.5, 2.0]));
            let a = t.add_row(x, row);
            let b = t.mul_row(a, row);
            t.mean_all(b)
        })?;
    }

    #[test]
    fn grad_atan2(vals in smooth_vals(3)) {
        // Keep the radius healthy so atan2 is smooth.
        let shifted: Vec<f32> = vals.iter().map(|v| v + 3.0).collect();
        let (s, id) = store_with(&shifted, 1, 3);
        assert_grad_ok(s, id, |t, s| {
            let x = t.param(s, id);
            let y = t.sin(x);
            let c = t.cos(x);
            let theta = t.atan2(y, c);
            t.mean_all(theta)
        })?;
    }

    #[test]
    fn grad_concat_slice(vals in smooth_vals(4)) {
        let (s, id) = store_with(&vals, 2, 2);
        assert_grad_ok(s, id, |t, s| {
            let x = t.param(s, id);
            let y = t.tanh(x);
            let cat = t.concat_cols(&[x, y]);
            let sl = t.slice_cols(cat, 1, 3);
            t.mean_all(sl)
        })?;
    }

    #[test]
    fn grad_min_max(vals in smooth_vals(4)) {
        let (s, id) = store_with(&vals, 1, 4);
        assert_grad_ok(s, id, |t, s| {
            let x = t.param(s, id);
            let c = t.constant(1, 4, 0.4);
            let mn = t.min(x, c);
            let mx = t.max(x, c);
            let sum = t.add(mn, mx);
            t.mean_all(sum)
        })?;
    }

    #[test]
    fn grad_log_sigmoid(vals in smooth_vals(4)) {
        let (s, id) = store_with(&vals, 1, 4);
        assert_grad_ok(s, id, |t, s| {
            let x = t.param(s, id);
            let ls = t.log_sigmoid(x);
            let n = t.neg(ls);
            t.mean_all(n)
        })?;
    }

    #[test]
    fn grad_sum_cols_l1(vals in smooth_vals(6)) {
        let (s, id) = store_with(&vals, 2, 3);
        assert_grad_ok(s, id, |t, s| {
            let x = t.param(s, id);
            let l1 = t.l1_rows(x);
            t.mean_all(l1)
        })?;
    }

    #[test]
    fn grad_gather_deep(vals in smooth_vals(8)) {
        let (s, id) = store_with(&vals, 4, 2);
        assert_grad_ok(s, id, |t, s| {
            let rows = t.gather(s, id, &[3, 1, 1, 0]);
            let a = t.tanh(rows);
            let b = t.mul(a, rows);
            t.mean_all(b)
        })?;
    }
}
