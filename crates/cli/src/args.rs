//! Minimal flag parsing for the `halk` binary (no external parser crates —
//! the offline dependency set is deliberately small).
//!
//! Grammar: `halk <subcommand> [--flag value]...`. Flags are string-typed
//! here; each subcommand validates and converts what it needs.

use std::collections::BTreeMap;
use std::fmt;

/// A parsed command line: subcommand plus `--flag value` pairs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Args {
    /// The first positional argument.
    pub command: String,
    flags: BTreeMap<String, String>,
}

/// Command-line errors, printable as user-facing messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ArgError {
    /// No subcommand given.
    MissingCommand,
    /// A `--flag` without a value.
    MissingValue(String),
    /// A positional argument where a flag was expected.
    UnexpectedPositional(String),
    /// A required flag is absent.
    MissingFlag(&'static str),
    /// A flag value failed to parse.
    BadValue(&'static str, String),
}

impl fmt::Display for ArgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ArgError::MissingCommand => write!(f, "no subcommand given (try `halk help`)"),
            ArgError::MissingValue(k) => write!(f, "flag --{k} needs a value"),
            ArgError::UnexpectedPositional(v) => write!(f, "unexpected argument '{v}'"),
            ArgError::MissingFlag(k) => write!(f, "required flag --{k} missing"),
            ArgError::BadValue(k, v) => write!(f, "cannot parse --{k} value '{v}'"),
        }
    }
}

impl std::error::Error for ArgError {}

impl Args {
    /// Parses an argument list (excluding the program name).
    pub fn parse(argv: impl IntoIterator<Item = String>) -> Result<Args, ArgError> {
        let mut it = argv.into_iter();
        let command = it.next().ok_or(ArgError::MissingCommand)?;
        let mut flags = BTreeMap::new();
        while let Some(tok) = it.next() {
            if let Some(key) = tok.strip_prefix("--") {
                let value = it
                    .next()
                    .ok_or_else(|| ArgError::MissingValue(key.into()))?;
                flags.insert(key.to_string(), value);
            } else {
                return Err(ArgError::UnexpectedPositional(tok));
            }
        }
        Ok(Args { command, flags })
    }

    /// A required string flag.
    pub fn required(&self, key: &'static str) -> Result<&str, ArgError> {
        self.flags
            .get(key)
            .map(String::as_str)
            .ok_or(ArgError::MissingFlag(key))
    }

    /// An optional string flag.
    pub fn optional(&self, key: &str) -> Option<&str> {
        self.flags.get(key).map(String::as_str)
    }

    /// An optional parsed flag with a default.
    pub fn parsed_or<T: std::str::FromStr>(
        &self,
        key: &'static str,
        default: T,
    ) -> Result<T, ArgError> {
        match self.flags.get(key) {
            None => Ok(default),
            Some(v) => v.parse().map_err(|_| ArgError::BadValue(key, v.clone())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(s: &str) -> Result<Args, ArgError> {
        Args::parse(s.split_whitespace().map(str::to_string))
    }

    #[test]
    fn parses_command_and_flags() {
        let a = parse("gen --dataset fb237 --seed 7").unwrap();
        assert_eq!(a.command, "gen");
        assert_eq!(a.required("dataset").unwrap(), "fb237");
        assert_eq!(a.parsed_or::<u64>("seed", 0).unwrap(), 7);
    }

    #[test]
    fn defaults_apply() {
        let a = parse("gen").unwrap();
        assert_eq!(a.parsed_or::<usize>("steps", 100).unwrap(), 100);
        assert!(a.optional("out").is_none());
    }

    #[test]
    fn errors_are_specific() {
        assert_eq!(parse("").unwrap_err(), ArgError::MissingCommand);
        assert_eq!(
            parse("gen --seed").unwrap_err(),
            ArgError::MissingValue("seed".into())
        );
        assert_eq!(
            parse("gen stray").unwrap_err(),
            ArgError::UnexpectedPositional("stray".into())
        );
        let a = parse("gen --seed notanumber").unwrap();
        assert!(matches!(
            a.parsed_or::<u64>("seed", 0).unwrap_err(),
            ArgError::BadValue("seed", _)
        ));
        assert_eq!(a.required("out").unwrap_err(), ArgError::MissingFlag("out"));
    }
}
