//! `halk` — command-line interface to the HaLk reproduction.
//!
//! ```text
//! halk gen   --dataset fb15k|fb237|nell --out graph.tsv [--seed N]
//! halk stats --graph graph.tsv
//! halk train --graph graph.tsv --out model_dir [--steps N] [--dim N] [--seed N]
//!            [--checkpoint-every N] [--checkpoint-dir DIR]
//!            [--keep-checkpoints K] [--resume FILE]
//! halk ask   --graph graph.tsv --sparql 'SELECT ?x WHERE { e:0 r:0 ?x . }'
//!            [--model model_dir] [--engine exact|halk|match] [--top N]
//! halk serve --graph graph.tsv | --snapshot file.snap [--precision f32|i16|i8] ...
//! halk snapshot build   --graph graph.tsv --model model_dir --out file.snap
//! halk snapshot inspect --snap file.snap
//! halk help
//! ```
//!
//! Every failure path surfaces as a typed [`CliError`] printed to stderr
//! with a nonzero exit code (2 for usage errors, 1 for everything else) —
//! the binary never panics on bad input.

mod args;

use args::{ArgError, Args};
use halk_core::{train_model, HalkConfig, HalkModel, Precision, TrainConfig, TrainError};
use halk_kg::{generate, stats::GraphStats, tsv, Graph, SynthConfig};
use halk_logic::plan::{execute_set, PlanBindings, PlanShape};
use halk_logic::Structure;
use halk_matching::Matcher;
use halk_sparql::{sparql_to_query, SparqlError};
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Every way a `halk` invocation can fail.
#[derive(Debug)]
enum CliError {
    /// Command-line syntax or flag errors.
    Args(ArgError),
    /// Unknown subcommand.
    UnknownCommand(String),
    /// A graph file could not be read or parsed.
    Graph { path: String, error: io::Error },
    /// Training failed (checkpoint/resume problems, nothing trainable, …).
    Train(TrainError),
    /// A model directory could not be written or read.
    Model { dir: String, error: io::Error },
    /// The SPARQL query could not be understood.
    Sparql(SparqlError),
    /// Any other IO failure, with the path involved.
    Io { path: String, error: io::Error },
    /// A flag parsed but its value is out of range for this invocation
    /// (e.g. `serve --shards 0`, or more shards than entities).
    Flag { flag: &'static str, detail: String },
}

impl fmt::Display for CliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CliError::Args(e) => write!(f, "{e}"),
            CliError::UnknownCommand(c) => {
                write!(f, "unknown subcommand '{c}' (try `halk help`)")
            }
            CliError::Graph { path, error } => write!(f, "cannot read graph {path}: {error}"),
            CliError::Train(e) => write!(f, "training failed: {e}"),
            CliError::Model { dir, error } => write!(f, "model directory {dir}: {error}"),
            CliError::Sparql(e) => write!(f, "bad SPARQL query: {e}"),
            CliError::Io { path, error } => write!(f, "{path}: {error}"),
            CliError::Flag { flag, detail } => write!(f, "invalid --{flag}: {detail}"),
        }
    }
}

impl std::error::Error for CliError {}

impl From<ArgError> for CliError {
    fn from(e: ArgError) -> Self {
        CliError::Args(e)
    }
}

impl From<TrainError> for CliError {
    fn from(e: TrainError) -> Self {
        CliError::Train(e)
    }
}

impl From<SparqlError> for CliError {
    fn from(e: SparqlError) -> Self {
        CliError::Sparql(e)
    }
}

impl CliError {
    /// Usage mistakes exit with 2, operational failures with 1.
    fn exit_code(&self) -> ExitCode {
        match self {
            CliError::Args(_) | CliError::UnknownCommand(_) | CliError::Flag { .. } => {
                ExitCode::from(2)
            }
            _ => ExitCode::FAILURE,
        }
    }
}

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            e.exit_code()
        }
    }
}

fn run(mut argv: Vec<String>) -> Result<(), CliError> {
    // `snapshot` takes an action word (`build` / `inspect`); lift it out so
    // the uniform `--flag value` grammar handles the rest.
    let action = if argv.first().map(String::as_str) == Some("snapshot")
        && argv.get(1).is_some_and(|a| !a.starts_with("--"))
    {
        Some(argv.remove(1))
    } else {
        None
    };
    let args = Args::parse(argv)?;
    init_obs(&args);
    let result = match args.command.as_str() {
        "gen" => cmd_gen(&args),
        "stats" => cmd_stats(&args),
        "train" => cmd_train(&args),
        "ask" => cmd_ask(&args),
        "serve" => cmd_serve(&args),
        "top" => cmd_top(&args),
        "snapshot" => cmd_snapshot(&args, action.as_deref()),
        "help" | "--help" | "-h" => {
            print!("{}", HELP);
            Ok(())
        }
        other => Err(CliError::UnknownCommand(other.to_string())),
    };
    finish_obs(&args);
    result
}

/// Installs the pool-stats observability hooks and honors `HALK_TRACE` plus
/// the `--trace` flag (accepted by every subcommand).
fn init_obs(args: &Args) {
    halk_core::obs::install();
    halk_obs::trace::init_from_env();
    if let Some(path) = args.optional("trace") {
        if let Err(e) = halk_obs::trace::init_trace(path) {
            halk_obs::log!(Error, "cannot open trace file {path}: {e}");
        }
    }
}

/// Writes the `--metrics-out` snapshot (if requested) and flushes the
/// trace. Runs on success and failure alike so partial runs still leave
/// their observability artifacts behind.
fn finish_obs(args: &Args) {
    if let Some(path) = args.optional("metrics-out") {
        match halk_obs::metrics::write_snapshot(path) {
            Ok(()) => eprintln!("metrics snapshot written to {path}"),
            Err(e) => halk_obs::log!(Error, "cannot write metrics snapshot {path}: {e}"),
        }
    }
    halk_obs::trace::flush();
}

const HELP: &str = "\
halk — answering logical queries on knowledge graphs (HaLk, ICDE 2023)

USAGE:
  halk gen   --dataset fb15k|fb237|nell --out graph.tsv [--seed N]
  halk stats --graph graph.tsv
  halk train --graph graph.tsv --out model_dir [--steps N] [--dim N] [--seed N]
             [--checkpoint-every N]   write a checkpoint every N steps
             [--checkpoint-dir DIR]   where to put them (default: OUT/checkpoints)
             [--keep-checkpoints K]   rotate, keeping the last K (default 3)
             [--resume FILE]          resume a run from a checkpoint file
             [--threads N]            worker threads (0 = auto, also via
                                      HALK_THREADS; results are identical
                                      at any setting)
  halk ask   --graph graph.tsv --sparql QUERY
             [--model model_dir] [--engine exact|halk|match] [--top N]
  halk serve --graph graph.tsv [--model model_dir] [--addr 127.0.0.1:7464]
             [--workers N] [--queue-cap N] [--max-sessions N]
             [--default-deadline-ms N] [--drain-ms N]
             [--shards N]              arc shards for sharded scoring
                                      (omit for auto: the thread budget;
                                      must be 1..=entity count)
             [--batch-cap N]          most same-skeleton requests one
                                      worker batches into a single kernel
                                      pass (default 16; must be >= 1)
             [--snapshot FILE]        boot from a binary snapshot instead
                                      of --graph/--model (fast cold start)
             [--precision f32|i16|i8] trig table storage precision
                                      (f32 = bit-exact default; i16/i8
                                      shrink resident bytes 2x/4x and
                                      preserve ranks — DESIGN.md §14)
             [--obs-addr HOST:PORT]   serve GET /metrics, /metrics.json
                                      and /healthz on a dedicated thread
                                      (DESIGN.md §16; port 0 = OS-picked,
                                      printed as `metrics on ...`)
             [--slow-ms N]            log queries slower than N ms with a
                                      per-phase breakdown (also via
                                      HALK_SLOW_MS; 0 = log every query)
             answer queries as a daemon until SIGINT/SIGTERM or a
             SHUTDOWN frame; degrades gracefully under overload
             (see DESIGN.md §12 for the wire protocol)
  halk top   --addr HOST:PORT         the daemon's --obs-addr endpoint
             [--serve-addr HOST:PORT] also poll the daemon's STATS verb
             [--interval-ms N]        refresh cadence (default 1000)
             [--once true]            print one snapshot and exit
             live one-screen view of a running daemon: qps, rolling
             p50/p99, queue depth, shed/panic rates, batch sizes,
             cache hits, per-region pool load
  halk snapshot build   --graph graph.tsv --model model_dir --out FILE
  halk snapshot inspect --snap FILE
             versioned CRC-framed binary snapshots of graph + model;
             `serve --snapshot` boots from them without touching TSVs
  halk help

  `train` and `serve` handle SIGINT/SIGTERM gracefully: train finishes
  the in-flight step and writes a final checkpoint; serve stops
  accepting, drains in-flight requests to a deadline, and flushes
  observability artifacts.

OBSERVABILITY (any subcommand):
  --trace FILE         write a JSONL span trace (same as HALK_TRACE=FILE)
  --metrics-out FILE   write a metrics snapshot on exit (.prom for
                       Prometheus text, anything else for JSON)
  HALK_LOG=error|warn|info|debug   stderr log level (default: error)
  `train` additionally writes results/cli_train/manifest.json
";

fn load_graph(args: &Args) -> Result<Graph, CliError> {
    let path = args.required("graph")?;
    tsv::load(Path::new(path)).map_err(|error| CliError::Graph {
        path: path.to_string(),
        error,
    })
}

fn cmd_gen(args: &Args) -> Result<(), CliError> {
    let dataset = args.required("dataset")?;
    let out = args.required("out")?;
    let seed: u64 = args.parsed_or("seed", 40)?;
    let cfg = match dataset {
        "fb15k" => SynthConfig::fb15k_like(),
        "fb237" => SynthConfig::fb237_like(),
        "nell" => SynthConfig::nell_like(),
        other => return Err(ArgError::BadValue("dataset", other.into()).into()),
    };
    use rand::SeedableRng;
    let g = generate(&cfg, &mut rand::rngs::StdRng::seed_from_u64(seed));
    tsv::save(&g, Path::new(out)).map_err(|error| CliError::Io {
        path: out.to_string(),
        error,
    })?;
    println!(
        "wrote {out}: {} entities, {} relations, {} triples",
        g.n_entities(),
        g.n_relations(),
        g.n_triples()
    );
    Ok(())
}

fn cmd_stats(args: &Args) -> Result<(), CliError> {
    let g = load_graph(args)?;
    let s = GraphStats::compute(&g);
    println!("entities          {}", s.n_entities);
    println!("relations         {}", s.n_relations);
    println!("triples           {}", s.n_triples);
    println!("avg degree        {:.2}", s.avg_degree);
    println!("median degree     {}", s.median_degree);
    println!("max degree        {}", s.max_degree);
    println!("inverse leakage   {:.0}%", 100.0 * s.inverse_leakage);
    Ok(())
}

fn cmd_train(args: &Args) -> Result<(), CliError> {
    let g = load_graph(args)?;
    let out = args.required("out")?;
    let steps: usize = args.parsed_or("steps", 3000)?;
    let dim: usize = args.parsed_or("dim", 32)?;
    let seed: u64 = args.parsed_or("seed", 7)?;
    let checkpoint_every: usize = args.parsed_or("checkpoint-every", 0)?;
    let keep_checkpoints: usize = args.parsed_or("keep-checkpoints", 3)?;
    let checkpoint_dir = match args.optional("checkpoint-dir") {
        Some(dir) => Some(PathBuf::from(dir)),
        None if checkpoint_every > 0 => Some(Path::new(out).join("checkpoints")),
        None => None,
    };
    let resume_from = args.optional("resume").map(PathBuf::from);
    let threads: usize = args.parsed_or("threads", 0)?;
    if threads > 0 {
        // Also steer any Pool::auto() users (evaluation, scoring) beyond
        // this TrainConfig.
        halk_par::set_threads(threads);
    }

    let cfg = HalkConfig {
        dim,
        hidden: 2 * dim,
        steps,
        seed,
        ..HalkConfig::default()
    };
    let mut model = HalkModel::new(&g, cfg);

    // SIGINT/SIGTERM ask training to finish the in-flight step, write a
    // final checkpoint, and exit cleanly. The watcher thread bridges the
    // process-global signal flag into the `TrainConfig::stop` switch.
    let stop = Arc::new(AtomicBool::new(false));
    let watcher_done = Arc::new(AtomicBool::new(false));
    let signal_flag = halk_serve::signal::install_shutdown_flag();
    let watcher = {
        let stop = stop.clone();
        let done = watcher_done.clone();
        std::thread::spawn(move || {
            while !done.load(Ordering::Relaxed) {
                if signal_flag.load(Ordering::Relaxed) {
                    stop.store(true, Ordering::Relaxed);
                    break;
                }
                std::thread::sleep(Duration::from_millis(25));
            }
        })
    };
    let tc = TrainConfig {
        steps,
        log_every: (steps / 10).max(1),
        seed,
        checkpoint_every,
        checkpoint_dir,
        keep_checkpoints,
        resume_from,
        threads,
        stop: Some(stop.clone()),
        ..TrainConfig::default()
    };
    let mut manifest = halk_obs::Manifest::new("cli_train");
    manifest.config_int("steps", steps as u64);
    manifest.config_int("dim", dim as u64);
    manifest.config_str("graph", args.required("graph")?);
    manifest.set_int("seed", seed);
    manifest.set_int("threads", halk_par::auto_threads() as u64);

    let train_start = std::time::Instant::now();
    let result = train_model(&mut model, &g, &Structure::training(), &tc);
    watcher_done.store(true, Ordering::Relaxed);
    let _ = watcher.join();
    let stats = result?;
    manifest.phase("train", train_start.elapsed());

    let save_start = std::time::Instant::now();
    model
        .save(Path::new(out))
        .map_err(|error| CliError::Model {
            dir: out.to_string(),
            error,
        })?;
    manifest.phase("save", save_start.elapsed());
    manifest.metric("tail_loss", f64::from(stats.tail_loss()));
    manifest.metric("rollbacks", stats.rollbacks as f64);
    match manifest.write() {
        Ok(p) => eprintln!("manifest written to {}", p.display()),
        Err(e) => halk_obs::log!(Error, "cannot write train manifest: {e}"),
    }
    if stats.start_step > 0 {
        println!("resumed at step {}", stats.start_step);
    }
    if stats.interrupted {
        let at = stats.start_step + stats.losses.len();
        if checkpoint_every > 0 {
            println!("interrupted by signal after step {at}; final checkpoint written — resume with --resume");
        } else {
            println!("interrupted by signal after step {at}");
        }
    }
    if stats.rollbacks > 0 {
        println!("recovered from {} diverged step(s)", stats.rollbacks);
    }
    println!(
        "trained {} steps in {:.1?} (tail loss {:.3}); model saved to {out}",
        stats.losses.len(),
        stats.wall,
        stats.tail_loss()
    );
    Ok(())
}

fn cmd_ask(args: &Args) -> Result<(), CliError> {
    let g = load_graph(args)?;
    let sparql = args.required("sparql")?;
    let engine = args.optional("engine").unwrap_or("exact");
    let top: usize = args.parsed_or("top", 10)?;

    let query = sparql_to_query(sparql)?;
    println!("computation tree: {}", query.render());
    match engine {
        "exact" => {
            let shape = PlanShape::compile(&query);
            println!(
                "compiled plan: {} slot(s), {} branch(es)",
                shape.n_slots(),
                shape.n_branches()
            );
            let ans = execute_set(&shape, &PlanBindings::of(&query), &g);
            let shown: Vec<u32> = ans.iter().take(top).map(|e| e.0).collect();
            println!("exact answers ({} total): {shown:?}", ans.len());
        }
        "halk" => {
            let dir = args.required("model")?;
            let model = HalkModel::load(&g, Path::new(dir)).map_err(|error| CliError::Model {
                dir: dir.to_string(),
                error,
            })?;
            let scores = model.score_all(&query);
            println!("HaLk top-{top}:");
            for e in halk_core::top_k_indices(&scores, top) {
                println!("  e{e}  (distance {:.3})", scores[e as usize]);
            }
        }
        "match" => {
            let hits = Matcher::new(&g).answer(&query);
            println!("matcher results (top {top}):");
            for m in hits.iter().take(top) {
                println!("  {}  (score {:.1})", m.entity, m.score);
            }
        }
        other => return Err(ArgError::BadValue("engine", other.into()).into()),
    }
    Ok(())
}

/// `halk snapshot build|inspect` — produce and examine versioned binary
/// snapshots (graph + grouping + config + parameters in one CRC-framed
/// file; see DESIGN.md §14).
fn cmd_snapshot(args: &Args, action: Option<&str>) -> Result<(), CliError> {
    match action {
        Some("build") => {
            let g = load_graph(args)?;
            let dir = args.required("model")?;
            let model = HalkModel::load(&g, Path::new(dir)).map_err(|error| CliError::Model {
                dir: dir.to_string(),
                error,
            })?;
            let out = args.required("out")?;
            let started = std::time::Instant::now();
            halk_snap::write_file(Path::new(out), &g, &model).map_err(|error| CliError::Io {
                path: out.to_string(),
                error,
            })?;
            let meta = halk_snap::inspect_file(Path::new(out)).map_err(|error| CliError::Io {
                path: out.to_string(),
                error,
            })?;
            println!(
                "wrote {out}: snapshot v{} — {} entities, {} relations, {} triples, \
                 {} params ({} bytes) in {:.1?}",
                meta.version,
                meta.n_entities,
                meta.n_relations,
                meta.n_triples,
                meta.n_params,
                meta.total_bytes,
                started.elapsed()
            );
            Ok(())
        }
        Some("inspect") => {
            let path = args.required("snap")?;
            let meta = halk_snap::inspect_file(Path::new(path)).map_err(|error| CliError::Io {
                path: path.to_string(),
                error,
            })?;
            println!("snapshot version  {}", meta.version);
            println!("entities          {}", meta.n_entities);
            println!("relations         {}", meta.n_relations);
            println!("triples           {}", meta.n_triples);
            println!("groups            {}", meta.n_groups);
            println!("dim               {}", meta.dim);
            println!("param tensors     {}", meta.n_params);
            println!("param scalars     {}", meta.n_scalars);
            println!("total bytes       {}", meta.total_bytes);
            for (name, bytes) in &meta.sections {
                println!("  section {name}   {bytes} bytes");
            }
            Ok(())
        }
        Some(other) => Err(ArgError::BadValue("action", other.into()).into()),
        None => Err(ArgError::MissingFlag("action (build|inspect)").into()),
    }
}

fn cmd_serve(args: &Args) -> Result<(), CliError> {
    let boot_start = std::time::Instant::now();
    // Boot either from a binary snapshot (graph + model + grouping + the
    // precomputed trig table in one validated read) or from the TSV +
    // model-directory cold path. The snapshot keeps its trig so the engine
    // can re-slice it instead of recomputing sin/cos per entity row.
    let (g, model, boot_trig) = match args.optional("snapshot") {
        Some(path) => {
            let (g, m, trig) =
                halk_snap::read_file(Path::new(path)).map_err(|error| CliError::Io {
                    path: path.to_string(),
                    error,
                })?;
            (g, Some(m), Some(trig))
        }
        None => {
            let g = load_graph(args)?;
            let model =
                match args.optional("model") {
                    Some(dir) => Some(HalkModel::load(&g, Path::new(dir)).map_err(|error| {
                        CliError::Model {
                            dir: dir.to_string(),
                            error,
                        }
                    })?),
                    None => None,
                };
            (g, model, None)
        }
    };
    let addr = args.optional("addr").unwrap_or("127.0.0.1:7464");
    let defaults = halk_serve::ServeConfig::default();
    let cfg = halk_serve::ServeConfig {
        addr: addr.to_string(),
        obs_addr: args.optional("obs-addr").map(str::to_string),
        workers: args.parsed_or("workers", defaults.workers)?,
        queue_cap: args.parsed_or("queue-cap", defaults.queue_cap)?,
        max_sessions: args.parsed_or("max-sessions", defaults.max_sessions)?,
        default_deadline: Duration::from_millis(args.parsed_or(
            "default-deadline-ms",
            defaults.default_deadline.as_millis() as u64,
        )?),
        drain: Duration::from_millis(
            args.parsed_or("drain-ms", defaults.drain.as_millis() as u64)?,
        ),
        ..defaults
    };
    let has_model = model.is_some();
    let faults = args
        .optional("test-faults")
        .is_some_and(|v| v == "true" || v == "1");
    // Omitting --shards means auto (the thread budget); an explicit value
    // must be a sane shard count for *this* graph — zero shards or more
    // shards than entities is a configuration mistake, rejected up front
    // with a typed error instead of panicking deep in the table build.
    let shards_opt = match args.optional("shards") {
        None => None,
        Some(v) => {
            let n: usize = v
                .parse()
                .map_err(|_| ArgError::BadValue("shards", v.to_string()))?;
            if n == 0 {
                return Err(CliError::Flag {
                    flag: "shards",
                    detail: "must be at least 1 (omit the flag for auto)".to_string(),
                });
            }
            if n > g.n_entities() {
                return Err(CliError::Flag {
                    flag: "shards",
                    detail: format!("{n} shards exceed the graph's {} entities", g.n_entities()),
                });
            }
            Some(n)
        }
    };
    // Omitting --batch-cap keeps the engine default; an explicit 0 would
    // silently disable batching-with-a-bound, so reject it.
    let batch_cap = match args.optional("batch-cap") {
        None => None,
        Some(v) => {
            let n: usize = v
                .parse()
                .map_err(|_| ArgError::BadValue("batch-cap", v.to_string()))?;
            if n == 0 {
                return Err(CliError::Flag {
                    flag: "batch-cap",
                    detail: "must be at least 1".to_string(),
                });
            }
            Some(n)
        }
    };
    // `--slow-ms` overrides the HALK_SLOW_MS environment default; 0 is
    // legitimate (flag every request — CI uses it to exercise the path).
    let slow_ms = match args.optional("slow-ms") {
        None => None,
        Some(v) => Some(
            v.parse::<u64>()
                .map_err(|_| ArgError::BadValue("slow-ms", v.to_string()))?,
        ),
    };
    let precision: Precision = args.parsed_or("precision", Precision::F32)?;
    let mut engine = match (boot_trig, model) {
        (Some(trig), Some(m)) => {
            halk_serve::Engine::with_boot_table(g, m, &trig, shards_opt, precision)
        }
        (_, model) => halk_serve::Engine::with_options(g, model, shards_opt, precision),
    }
    .test_faults(faults);
    if let Some(cap) = batch_cap {
        engine = engine.batch_cap(cap);
    }
    if slow_ms.is_some() {
        engine = engine.slow_ms(slow_ms);
    }
    let boot = boot_start.elapsed();
    halk_obs::metrics::gauge("halk_serve_boot_ns").set(boot.as_nanos() as f64);
    eprintln!(
        "booted in {boot:.1?} ({}; precision {precision}, trig resident {} bytes)",
        if args.optional("snapshot").is_some() {
            "snapshot"
        } else {
            "tsv"
        },
        engine.trig_resident_bytes(),
    );

    let mut manifest = halk_obs::Manifest::new("serve");
    match args.optional("snapshot") {
        Some(path) => manifest.config_str("snapshot", path),
        None => manifest.config_str("graph", args.required("graph")?),
    }
    manifest.config_str("addr", addr);
    manifest.config_int("workers", cfg.workers as u64);
    manifest.config_int("queue_cap", cfg.queue_cap as u64);
    manifest.config_int("shards", engine.n_shards() as u64);
    manifest.config_int("batch_cap", engine.max_batch() as u64);
    manifest.config_str("precision", precision.name());
    manifest.set_int("boot_ns", boot.as_nanos() as u64);
    manifest.set_int("trig_resident_bytes", engine.trig_resident_bytes() as u64);
    manifest.set_bool("model_loaded", has_model);

    let signal_flag = halk_serve::signal::install_shutdown_flag();
    let started = std::time::Instant::now();
    let server = halk_serve::Server::start(engine, cfg).map_err(|error| CliError::Io {
        path: addr.to_string(),
        error,
    })?;
    println!("listening on {}", server.local_addr());
    if let Some(obs) = server.obs_addr() {
        // Same stdout discovery contract as `listening on` — scripts boot
        // with port 0 and scrape the resolved address from here.
        println!("metrics on {obs}");
    }

    // Serve until a signal lands or a client sends a SHUTDOWN frame;
    // either way drain in-flight work before exiting.
    while !signal_flag.load(Ordering::Relaxed) && !server.shutdown_requested() {
        std::thread::sleep(Duration::from_millis(50));
    }
    eprintln!("shutdown requested; draining");
    server.begin_shutdown();
    server.join();
    manifest.phase("serve", started.elapsed());

    let m = halk_obs::metrics::counter("halk_serve_requests_total").get();
    manifest.metric("requests_total", m as f64);
    manifest.metric(
        "overloaded_total",
        halk_obs::metrics::counter("halk_serve_overloaded_total").get() as f64,
    );
    manifest.metric(
        "deadline_shed_total",
        halk_obs::metrics::counter("halk_serve_deadline_shed_total").get() as f64,
    );
    manifest.metric(
        "panics_total",
        halk_obs::metrics::counter("halk_serve_panics_total").get() as f64,
    );
    let lat = halk_obs::metrics::histogram("halk_serve_latency_us");
    manifest.metric("latency_p50_us", lat.quantile(0.5) as f64);
    manifest.metric("latency_p99_us", lat.quantile(0.99) as f64);
    match manifest.write() {
        Ok(p) => eprintln!("manifest written to {}", p.display()),
        Err(e) => halk_obs::log!(Error, "cannot write serve manifest: {e}"),
    }
    println!("served {m} request(s); goodbye");
    Ok(())
}

// ---------------------------------------------------------------- halk top

/// One bounded HTTP/1.0 GET against the daemon's scrape endpoint; returns
/// the response body (everything after the blank line).
fn http_get_body(addr: &str, path: &str) -> io::Result<String> {
    use std::io::{Read, Write};
    let mut s = std::net::TcpStream::connect(addr)?;
    s.set_read_timeout(Some(Duration::from_secs(5)))?;
    s.set_write_timeout(Some(Duration::from_secs(5)))?;
    s.write_all(format!("GET {path} HTTP/1.0\r\n\r\n").as_bytes())?;
    let mut raw = String::new();
    s.read_to_string(&mut raw)?;
    let body = raw
        .split_once("\r\n\r\n")
        .or_else(|| raw.split_once("\n\n"))
        .map(|(_, b)| b.to_string())
        .unwrap_or(raw);
    Ok(body)
}

/// Walks `path` into nested JSON objects and reads a number; 0.0 when any
/// step is missing, so a young daemon (no samples yet) renders as zeros.
fn json_num(v: &serde_json::Value, path: &[&str]) -> f64 {
    let mut cur = v;
    for key in path {
        match cur.get(key) {
            Some(next) => cur = next,
            None => return 0.0,
        }
    }
    cur.as_f64().unwrap_or(0.0)
}

fn json_bool(v: &serde_json::Value, path: &[&str]) -> bool {
    let mut cur = v;
    for key in path {
        match cur.get(key) {
            Some(next) => cur = next,
            None => return false,
        }
    }
    cur.as_bool().unwrap_or(false)
}

fn json_str<'a>(v: &'a serde_json::Value, path: &[&str]) -> &'a str {
    let mut cur = v;
    for key in path {
        match cur.get(key) {
            Some(next) => cur = next,
            None => return "?",
        }
    }
    cur.as_str().unwrap_or("?")
}

/// Renders one screenful of daemon state from a `/metrics.json` snapshot
/// (plus optional `STATS` pairs from the query port).
fn render_top(addr: &str, v: &serde_json::Value, stats: Option<&[(String, u64)]>) -> String {
    use std::fmt::Write as _;
    let wrate = |name: &str| json_num(v, &["window", "counters", name, "rate"]);
    let wq = |name: &str, q: &str| json_num(v, &["window", "histograms", name, q]);
    let ctotal = |name: &str| json_num(v, &["cumulative", "counters", name]);
    let window_s = json_num(v, &["window_us"]).max(json_num(v, &["window", "window_us"])) / 1e6;

    let mut out = String::new();
    let _ = writeln!(
        out,
        "halk top — {addr}   (rolling window {window_s:.0}s; rates are per-second)"
    );
    let _ = writeln!(
        out,
        "requests  {:>10.1}/s   total {:>10}",
        wrate("halk_serve_requests_total"),
        ctotal("halk_serve_requests_total") as u64,
    );
    let _ = writeln!(
        out,
        "latency   p50 {:>8}us   p99 {:>8}us   queue wait p99 {:>8}us",
        wq("halk_serve_latency_us", "p50") as u64,
        wq("halk_serve_latency_us", "p99") as u64,
        wq("halk_serve_queue_wait_us", "p99") as u64,
    );
    let _ = writeln!(
        out,
        "queue     depth {:>3} / cap {:<4}  sessions {:>3} / max {:<4}",
        json_num(v, &["health", "queue_depth"]) as u64,
        json_num(v, &["health", "queue_cap"]) as u64,
        json_num(v, &["health", "sessions"]) as u64,
        json_num(v, &["health", "max_sessions"]) as u64,
    );
    let _ = writeln!(
        out,
        "shed      overloaded {:>6.1}/s   deadline {:>6.1}/s   panics {:>6.1}/s",
        wrate("halk_serve_overloaded_total"),
        wrate("halk_serve_deadline_shed_total"),
        wrate("halk_serve_panics_total"),
    );
    let _ = writeln!(
        out,
        "batch     p50 {:>3}  p99 {:>3}   grouped {:>6.1}/s   truncated {:>6.1}/s",
        wq("halk_serve_batch_size", "p50") as u64,
        wq("halk_serve_batch_size", "p99") as u64,
        wrate("halk_serve_batched_groups_total"),
        wrate("halk_serve_truncated_total"),
    );
    let _ = writeln!(
        out,
        "cache     scorer hits {:>6.1}/s   builds {:>6.1}/s   slow queries {:>6.1}/s",
        wrate("halk_exec_cache_hits_total"),
        wrate("halk_exec_cache_builds_total"),
        wrate("halk_serve_slow_queries_total"),
    );
    // Pool load per labeled region: windowed busy/wall is the mean number
    // of active workers over the window (can exceed 1.0).
    if let serde_json::Value::Object(fields) = v
        .get("window")
        .and_then(|w| w.get("counters"))
        .unwrap_or(&serde_json::Value::Null)
    {
        let mut any = false;
        for (name, _) in fields.iter() {
            let Some(region) = name.strip_prefix("halk_pool_wall_us_") else {
                continue;
            };
            let busy_name = format!("halk_pool_busy_us_{region}");
            let wall = json_num(v, &["window", "counters", name.as_str(), "total"]);
            let busy = json_num(v, &["window", "counters", busy_name.as_str(), "total"]);
            if wall > 0.0 {
                if !any {
                    let _ = write!(out, "pool      ");
                    any = true;
                }
                let _ = write!(out, "{region} x{:.1}  ", busy / wall);
            }
        }
        if any {
            let _ = writeln!(out);
        }
    }
    let _ = writeln!(
        out,
        "health    draining={}  model={}  shards={}  precision={}  resident {:.1} MB",
        json_bool(v, &["health", "draining"]),
        json_bool(v, &["health", "has_model"]),
        json_num(v, &["health", "shards"]) as u64,
        json_str(v, &["health", "precision"]),
        json_num(v, &["health", "trig_resident_bytes"]) / (1024.0 * 1024.0),
    );
    if let Some(pairs) = stats {
        let get = |k: &str| pairs.iter().find(|(n, _)| n == k).map_or(0, |&(_, x)| x);
        let _ = writeln!(
            out,
            "stats     p50 {}us  p99 {}us  depth {}  boot {:.1}ms  (query-port STATS)",
            get("latency_p50_us"),
            get("latency_p99_us"),
            get("queue_depth"),
            get("boot_ns") as f64 / 1e6,
        );
    }
    out
}

/// `halk top`: poll a daemon's `--obs-addr` endpoint (and optionally its
/// query port's STATS verb) and redraw a one-screen live view.
fn cmd_top(args: &Args) -> Result<(), CliError> {
    let addr = args.required("addr")?;
    let once = args
        .optional("once")
        .is_some_and(|x| x == "true" || x == "1");
    let interval = Duration::from_millis(args.parsed_or("interval-ms", 1_000u64)?);
    loop {
        let body = http_get_body(addr, "/metrics.json").map_err(|error| CliError::Io {
            path: format!("{addr}/metrics.json"),
            error,
        })?;
        let v: serde_json::Value = serde_json::from_str(&body).map_err(|e| CliError::Io {
            path: format!("{addr}/metrics.json"),
            error: io::Error::new(io::ErrorKind::InvalidData, e.to_string()),
        })?;
        let stats = match args.optional("serve-addr") {
            Some(sa) => {
                let mut c = halk_serve::Client::connect(sa).map_err(|error| CliError::Io {
                    path: sa.to_string(),
                    error,
                })?;
                match c.stats() {
                    Ok(halk_serve::Response::Stats { pairs }) => Some(pairs),
                    _ => None,
                }
            }
            None => None,
        };
        let screen = render_top(addr, &v, stats.as_deref());
        if once {
            print!("{screen}");
            return Ok(());
        }
        // ANSI clear + home: redraw in place like top(1).
        print!("\x1b[2J\x1b[H{screen}");
        use std::io::Write as _;
        let _ = io::stdout().flush();
        std::thread::sleep(interval);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("halk_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn run_line(line: &str) -> Result<(), CliError> {
        run(line.split_whitespace().map(str::to_string).collect())
    }

    #[test]
    fn gen_stats_ask_pipeline() {
        let g = tmp("g.tsv");
        let gs = g.to_str().unwrap();
        run_line(&format!("gen --dataset fb237 --out {gs} --seed 3")).unwrap();
        run_line(&format!("stats --graph {gs}")).unwrap();
        // Ask with the exact engine over an edge that must exist.
        let graph = tsv::load(&g).unwrap();
        let t = graph.triples()[0];
        run(vec![
            "ask".into(),
            "--graph".into(),
            gs.into(),
            "--sparql".into(),
            format!("SELECT ?x WHERE {{ e:{} r:{} ?x . }}", t.h.0, t.r.0),
        ])
        .unwrap();
    }

    #[test]
    fn unknown_subcommand_fails() {
        let err = run_line("frobnicate").unwrap_err();
        assert!(matches!(err, CliError::UnknownCommand(_)));
        assert_eq!(err.exit_code(), ExitCode::from(2));
        assert!(matches!(run_line("").unwrap_err(), CliError::Args(_)));
    }

    #[test]
    fn ask_requires_model_for_halk_engine() {
        let g = tmp("g2.tsv");
        let gs = g.to_str().unwrap();
        run_line(&format!("gen --dataset nell --out {gs} --seed 4")).unwrap();
        let err = run(vec![
            "ask".into(),
            "--graph".into(),
            gs.into(),
            "--sparql".into(),
            "SELECT ?x WHERE { e:0 r:0 ?x . }".into(),
            "--engine".into(),
            "halk".into(),
        ])
        .unwrap_err();
        assert!(err.to_string().contains("--model"), "{err}");
    }

    #[test]
    fn serve_rejects_bad_shards_and_batch_cap_with_typed_errors() {
        let g = tmp("g_serve_flags.tsv");
        let gs = g.to_str().unwrap();
        run_line(&format!("gen --dataset nell --out {gs} --seed 6")).unwrap();
        // Explicit zero is a mistake, not auto (omit the flag for that).
        let err = run_line(&format!("serve --graph {gs} --shards 0")).unwrap_err();
        assert!(
            matches!(err, CliError::Flag { flag: "shards", .. }),
            "{err}"
        );
        assert_eq!(err.exit_code(), ExitCode::from(2));
        // More shards than entities can't all be non-empty.
        let n = tsv::load(&g).unwrap().n_entities();
        let err = run_line(&format!("serve --graph {gs} --shards {}", n + 1)).unwrap_err();
        assert!(
            matches!(err, CliError::Flag { flag: "shards", .. }),
            "{err}"
        );
        // A zero batch cap would mean "never batch anything, not even 1".
        let err = run_line(&format!("serve --graph {gs} --batch-cap 0")).unwrap_err();
        assert!(
            matches!(
                err,
                CliError::Flag {
                    flag: "batch-cap",
                    ..
                }
            ),
            "{err}"
        );
        // Unparsable values stay ordinary arg errors.
        let err = run_line(&format!("serve --graph {gs} --batch-cap lots")).unwrap_err();
        assert!(
            matches!(err, CliError::Args(ArgError::BadValue(..))),
            "{err}"
        );
    }

    #[test]
    fn missing_graph_file_is_a_graph_error_not_a_panic() {
        let err = run_line("stats --graph /definitely/not/there.tsv").unwrap_err();
        assert!(matches!(err, CliError::Graph { .. }));
        assert_eq!(err.exit_code(), ExitCode::FAILURE);
    }

    #[test]
    fn bad_resume_checkpoint_is_a_train_error() {
        let g = tmp("g3.tsv");
        let gs = g.to_str().unwrap();
        run_line(&format!("gen --dataset nell --out {gs} --seed 5")).unwrap();
        let bogus = tmp("bogus.ckpt");
        std::fs::write(&bogus, b"garbage").unwrap();
        let out = tmp("model_resume_err");
        let err = run_line(&format!(
            "train --graph {gs} --out {} --steps 5 --resume {}",
            out.display(),
            bogus.display()
        ))
        .unwrap_err();
        assert!(
            matches!(err, CliError::Train(TrainError::Resume { .. })),
            "{err}"
        );
    }

    #[test]
    fn help_prints() {
        run_line("help").unwrap();
    }

    #[test]
    fn snapshot_build_and_inspect_pipeline() {
        let g = tmp("g_snap.tsv");
        let gs = g.to_str().unwrap();
        run_line(&format!("gen --dataset nell --out {gs} --seed 6")).unwrap();
        let model_dir = tmp("model_snap");
        run_line(&format!(
            "train --graph {gs} --out {} --steps 3 --dim 8",
            model_dir.display()
        ))
        .unwrap();
        let snap = tmp("deploy.snap");
        run_line(&format!(
            "snapshot build --graph {gs} --model {} --out {}",
            model_dir.display(),
            snap.display()
        ))
        .unwrap();
        run_line(&format!("snapshot inspect --snap {}", snap.display())).unwrap();

        // The snapshot decodes to the same deployment the TSV path loads.
        let graph = tsv::load(&g).unwrap();
        let model = HalkModel::load(&graph, &model_dir).unwrap();
        let (g2, m2, _trig) = halk_snap::read_file(&snap).unwrap();
        assert_eq!(g2.triples(), graph.triples());
        let q = halk_sparql::sparql_to_query("SELECT ?x WHERE { e:0 r:0 ?x . }").unwrap();
        assert_eq!(model.score_all(&q), m2.score_all(&q));

        // Action word is mandatory and validated.
        assert!(run_line("snapshot --snap nope").is_err());
        assert!(run_line(&format!("snapshot frob --snap {}", snap.display())).is_err());
        // A corrupt snapshot is a typed IO error, not a panic.
        let bad = tmp("bad.snap");
        std::fs::write(&bad, b"HALKSNAPgarbage").unwrap();
        let err = run_line(&format!("snapshot inspect --snap {}", bad.display())).unwrap_err();
        assert!(matches!(err, CliError::Io { .. }), "{err}");
    }

    #[test]
    fn bad_dataset_rejected() {
        let err = run_line("gen --dataset wikidata --out /tmp/x.tsv").unwrap_err();
        assert!(err.to_string().contains("dataset"), "{err}");
    }
}
