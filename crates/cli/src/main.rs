//! `halk` — command-line interface to the HaLk reproduction.
//!
//! ```text
//! halk gen   --dataset fb15k|fb237|nell --out graph.tsv [--seed N]
//! halk stats --graph graph.tsv
//! halk train --graph graph.tsv --out model_dir [--steps N] [--dim N] [--seed N]
//! halk ask   --graph graph.tsv --sparql 'SELECT ?x WHERE { e:0 r:0 ?x . }'
//!            [--model model_dir] [--engine exact|halk|match] [--top N]
//! halk help
//! ```

mod args;

use args::{ArgError, Args};
use halk_core::{train_model, HalkConfig, HalkModel, TrainConfig};
use halk_kg::{generate, stats::GraphStats, tsv, Graph, SynthConfig};
use halk_logic::{answers, Structure};
use halk_matching::Matcher;
use halk_sparql::sparql_to_query;
use std::path::Path;
use std::process::ExitCode;

fn main() -> ExitCode {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    match run(argv) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

fn run(argv: Vec<String>) -> Result<(), String> {
    let args = Args::parse(argv).map_err(|e| e.to_string())?;
    match args.command.as_str() {
        "gen" => cmd_gen(&args),
        "stats" => cmd_stats(&args),
        "train" => cmd_train(&args),
        "ask" => cmd_ask(&args),
        "help" | "--help" | "-h" => {
            print!("{}", HELP);
            Ok(())
        }
        other => Err(format!("unknown subcommand '{other}' (try `halk help`)").into()),
    }
    .map_err(|e: Box<dyn std::error::Error>| e.to_string())
}

const HELP: &str = "\
halk — answering logical queries on knowledge graphs (HaLk, ICDE 2023)

USAGE:
  halk gen   --dataset fb15k|fb237|nell --out graph.tsv [--seed N]
  halk stats --graph graph.tsv
  halk train --graph graph.tsv --out model_dir [--steps N] [--dim N] [--seed N]
  halk ask   --graph graph.tsv --sparql QUERY
             [--model model_dir] [--engine exact|halk|match] [--top N]
  halk help
";

fn load_graph(args: &Args) -> Result<Graph, String> {
    let path = args.required("graph").map_err(|e| e.to_string())?;
    tsv::load(Path::new(path)).map_err(|e| format!("cannot read graph {path}: {e}"))
}

fn cmd_gen(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let dataset = args.required("dataset")?;
    let out = args.required("out")?;
    let seed: u64 = args.parsed_or("seed", 40)?;
    let cfg = match dataset {
        "fb15k" => SynthConfig::fb15k_like(),
        "fb237" => SynthConfig::fb237_like(),
        "nell" => SynthConfig::nell_like(),
        other => return Err(ArgError::BadValue("dataset", other.into()).into()),
    };
    use rand::SeedableRng;
    let g = generate(&cfg, &mut rand::rngs::StdRng::seed_from_u64(seed));
    tsv::save(&g, Path::new(out))?;
    println!(
        "wrote {out}: {} entities, {} relations, {} triples",
        g.n_entities(),
        g.n_relations(),
        g.n_triples()
    );
    Ok(())
}

fn cmd_stats(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let g = load_graph(args)?;
    let s = GraphStats::compute(&g);
    println!("entities          {}", s.n_entities);
    println!("relations         {}", s.n_relations);
    println!("triples           {}", s.n_triples);
    println!("avg degree        {:.2}", s.avg_degree);
    println!("median degree     {}", s.median_degree);
    println!("max degree        {}", s.max_degree);
    println!("inverse leakage   {:.0}%", 100.0 * s.inverse_leakage);
    Ok(())
}

fn cmd_train(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let g = load_graph(args)?;
    let out = args.required("out")?;
    let steps: usize = args.parsed_or("steps", 3000)?;
    let dim: usize = args.parsed_or("dim", 32)?;
    let seed: u64 = args.parsed_or("seed", 7)?;
    let cfg = HalkConfig {
        dim,
        hidden: 2 * dim,
        steps,
        seed,
        ..HalkConfig::default()
    };
    let mut model = HalkModel::new(&g, cfg);
    let tc = TrainConfig {
        steps,
        log_every: (steps / 10).max(1),
        seed,
        ..TrainConfig::default()
    };
    let stats = train_model(&mut model, &g, &Structure::training(), &tc);
    model.save(Path::new(out))?;
    println!(
        "trained {} steps in {:.1?} (tail loss {:.3}); model saved to {out}",
        steps,
        stats.wall,
        stats.tail_loss()
    );
    Ok(())
}

fn cmd_ask(args: &Args) -> Result<(), Box<dyn std::error::Error>> {
    let g = load_graph(args)?;
    let sparql = args.required("sparql")?;
    let engine = args.optional("engine").unwrap_or("exact");
    let top: usize = args.parsed_or("top", 10)?;

    let query = sparql_to_query(sparql)?;
    println!("computation tree: {}", query.render());
    match engine {
        "exact" => {
            let ans = answers(&query, &g);
            let shown: Vec<u32> = ans.iter().take(top).map(|e| e.0).collect();
            println!("exact answers ({} total): {shown:?}", ans.len());
        }
        "halk" => {
            let dir = args.required("model")?;
            let model = HalkModel::load(&g, Path::new(dir))?;
            let scores = model.score_all(&query);
            let mut ranked: Vec<u32> = (0..scores.len() as u32).collect();
            ranked.sort_by(|&a, &b| {
                scores[a as usize]
                    .partial_cmp(&scores[b as usize])
                    .unwrap_or(std::cmp::Ordering::Equal)
            });
            println!("HaLk top-{top}:");
            for &e in ranked.iter().take(top) {
                println!("  e{e}  (distance {:.3})", scores[e as usize]);
            }
        }
        "match" => {
            let hits = Matcher::new(&g).answer(&query);
            println!("matcher results (top {top}):");
            for m in hits.iter().take(top) {
                println!("  {}  (score {:.1})", m.entity, m.score);
            }
        }
        other => return Err(ArgError::BadValue("engine", other.into()).into()),
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("halk_cli_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn run_line(line: &str) -> Result<(), String> {
        run(line.split_whitespace().map(str::to_string).collect())
    }

    #[test]
    fn gen_stats_ask_pipeline() {
        let g = tmp("g.tsv");
        let gs = g.to_str().unwrap();
        run_line(&format!("gen --dataset fb237 --out {gs} --seed 3")).unwrap();
        run_line(&format!("stats --graph {gs}")).unwrap();
        // Ask with the exact engine over an edge that must exist.
        let graph = tsv::load(&g).unwrap();
        let t = graph.triples()[0];
        run(vec![
            "ask".into(),
            "--graph".into(),
            gs.into(),
            "--sparql".into(),
            format!("SELECT ?x WHERE {{ e:{} r:{} ?x . }}", t.h.0, t.r.0),
        ])
        .unwrap();
    }

    #[test]
    fn unknown_subcommand_fails() {
        assert!(run_line("frobnicate").is_err());
        assert!(run_line("").is_err());
    }

    #[test]
    fn ask_requires_model_for_halk_engine() {
        let g = tmp("g2.tsv");
        let gs = g.to_str().unwrap();
        run_line(&format!("gen --dataset nell --out {gs} --seed 4")).unwrap();
        let err = run(vec![
            "ask".into(),
            "--graph".into(),
            gs.into(),
            "--sparql".into(),
            "SELECT ?x WHERE { e:0 r:0 ?x . }".into(),
            "--engine".into(),
            "halk".into(),
        ])
        .unwrap_err();
        assert!(err.contains("--model"), "{err}");
    }

    #[test]
    fn help_prints() {
        run_line("help").unwrap();
    }

    #[test]
    fn bad_dataset_rejected() {
        let err = run_line("gen --dataset wikidata --out /tmp/x.tsv").unwrap_err();
        assert!(err.contains("dataset"), "{err}");
    }
}
