//! Umbrella crate for the HaLk reproduction workspace.
//!
//! Re-exports every sub-crate under one roof so the examples in
//! `examples/` and the integration tests in `tests/` can depend on a single
//! package. Library users should normally depend on the individual crates
//! (`halk-core`, `halk-kg`, …) directly.

pub use halk_baselines as baselines;
pub use halk_core as core;
pub use halk_geometry as geometry;
pub use halk_kg as kg;
pub use halk_logic as logic;
pub use halk_matching as matching;
pub use halk_nn as nn;
pub use halk_sparql as sparql;
