#!/usr/bin/env bash
# Regenerates the hot-path benchmark baseline at the repository root:
#
#   scripts/bench.sh                 # rewrite BENCH_hotpath.json
#   scripts/bench.sh --compare       # also gate against the committed file
#
# Always release mode — debug numbers are not comparable and must never be
# committed. See DESIGN.md §8 for the JSON schema.
set -euo pipefail
cd "$(dirname "$0")/.."

if [[ "${1:-}" == "--compare" ]]; then
    # Gate a fresh run against the committed baseline without touching it.
    cargo run --release -q -p halk-bench --bin bench_hotpath -- \
        --out /tmp/BENCH_hotpath.new.json --compare BENCH_hotpath.json
else
    cargo run --release -q -p halk-bench --bin bench_hotpath
    echo "bench: wrote BENCH_hotpath.json (commit it with the change that moved it)"
fi
