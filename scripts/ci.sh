#!/usr/bin/env bash
# The full pre-merge gate. Run from the repository root before every PR:
#
#   scripts/ci.sh
#
# Mirrors what CI enforces: a clean release build, the whole test suite,
# a warning-free clippy pass, and canonical formatting.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release --workspace"
# --workspace matters: a bare `cargo build` here builds only the root
# package, silently leaving e.g. the halk-cli binary stale.
cargo build --release --workspace

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test --workspace -q"
cargo test --workspace -q

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "ci: all checks passed"
