#!/usr/bin/env bash
# Regenerates every table/figure of EXPERIMENTS.md in one pass.
# Scale via HALK_SCALE / HALK_STEPS (see crates/bench/src/scale.rs).
set -uo pipefail
cd "$(dirname "$0")/.."
BINS=(exp_table1_2 exp_table3_4 exp_table5_ablation exp_fig6a_pruning
      exp_fig6b_offline exp_fig6c_online exp_table6_scalability
      exp_fig7_sparql exp_ablation_distance)
for b in "${BINS[@]}"; do
  echo "=== $b ==="
  cargo run --release -q -p halk-bench --bin "$b" || echo "!! $b failed"
done
echo "all experiment outputs in results/"
