//! A miniature SPARQL endpoint (§IV-F): read SPARQL queries, map them
//! through the Adaptor onto the five logical operators, execute with the
//! exact engine, and show the computation tree HaLk would embed.
//!
//! ```sh
//! cargo run --release --example sparql_endpoint
//! # or interactively:
//! echo 'SELECT ?x WHERE { e:0 r:0 ?x . }' | cargo run --release --example sparql_endpoint -- -
//! ```

use halk::kg::{generate, SynthConfig};
use halk::logic::answers;
use halk::sparql::sparql_to_query;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::Read;

fn main() {
    let g = generate(&SynthConfig::fb237_like(), &mut StdRng::seed_from_u64(7));
    eprintln!(
        "endpoint graph: {} entities, {} relations, {} triples",
        g.n_entities(),
        g.n_relations(),
        g.n_triples()
    );

    let interactive = std::env::args().nth(1).as_deref() == Some("-");
    let queries: Vec<String> = if interactive {
        let mut buf = String::new();
        std::io::stdin()
            .read_to_string(&mut buf)
            .expect("readable stdin");
        buf.split(';').map(str::to_string).collect()
    } else {
        // Demo queries grounded in the generated graph's first edges.
        let t0 = g.triples()[0];
        let t1 = g.triples()[1];
        let t2 = g.triples()[2];
        vec![
            format!("SELECT ?x WHERE {{ e:{} r:{} ?x . }}", t0.h.0, t0.r.0),
            format!(
                "SELECT ?x WHERE {{ {{ e:{} r:{} ?x . }} UNION {{ e:{} r:{} ?x . }} }}",
                t0.h.0, t0.r.0, t1.h.0, t1.r.0
            ),
            format!(
                "SELECT ?x WHERE {{ e:{} r:{} ?x . MINUS {{ e:{} r:{} ?x . }} }}",
                t0.h.0, t0.r.0, t1.h.0, t1.r.0
            ),
            format!(
                "SELECT ?x WHERE {{ e:{} r:{} ?x . FILTER NOT EXISTS {{ e:{} r:{} ?x . }} }}",
                t0.h.0, t0.r.0, t2.h.0, t2.r.0
            ),
        ]
    };

    for (i, sparql) in queries.iter().enumerate() {
        let sparql = sparql.trim();
        if sparql.is_empty() {
            continue;
        }
        println!("\n--- query {} ---\n{sparql}", i + 1);
        match sparql_to_query(sparql) {
            Ok(q) => {
                println!("adaptor -> {}", q.render());
                let ans = answers(&q, &g);
                let shown: Vec<u32> = ans.iter().take(12).map(|e| e.0).collect();
                println!("answers ({} total): {shown:?}", ans.len());
            }
            Err(e) => println!("error: {e}"),
        }
    }
}
