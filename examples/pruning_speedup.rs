//! Embedding-guided pruning for subgraph matching (§IV-D): compare the
//! GFinder-style matcher on the full data graph against the same matcher on
//! the induced graph built from HaLk's top-20 candidates per variable node.
//!
//! ```sh
//! cargo run --release --example pruning_speedup
//! ```

use halk::core::prune::{candidate_set, induced_graph};
use halk::core::{train_model, HalkConfig, HalkModel, TrainConfig};
use halk::kg::{generate, SynthConfig};
use halk::logic::{answers, Sampler, Structure};
use halk::matching::{answer_accuracy, Matcher};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let g = generate(&SynthConfig::nell_like(), &mut StdRng::seed_from_u64(7));
    println!(
        "data graph: {} entities, {} triples",
        g.n_entities(),
        g.n_triples()
    );

    let mut model = HalkModel::new(&g, HalkConfig::default());
    let tc = TrainConfig {
        steps: 1500,
        ..TrainConfig::default()
    };
    let stats = train_model(&mut model, &g, &Structure::training(), &tc).expect("training failed");
    println!("HaLk trained in {:.1?}\n", stats.wall);

    let sampler = Sampler::new(&g);
    let mut rng = StdRng::seed_from_u64(42);
    println!(
        "{:8} {:>10} {:>10} {:>9} {:>9} {:>8}",
        "query", "full(ms)", "pruned(ms)", "acc full", "acc prun", "speedup"
    );
    for s in [Structure::Ipp2, Structure::Ipp3, Structure::Ippd2] {
        let mut full_ms = 0.0;
        let mut pruned_ms = 0.0;
        let mut acc_full = 0.0;
        let mut acc_pruned = 0.0;
        let mut n = 0;
        for gq in sampler.sample_many(s, 5, &mut rng) {
            let truth = answers(&gq.query, &g);
            if truth.is_empty() {
                continue;
            }

            let t0 = Instant::now();
            let before = Matcher::new(&g).answer_entities(&gq.query);
            full_ms += t0.elapsed().as_secs_f64() * 1e3;
            acc_full += answer_accuracy(&before, &truth);

            let t1 = Instant::now();
            let cands = candidate_set(&model, &gq.query, 20);
            let small = induced_graph(&g, &cands);
            let after = Matcher::new(&small).answer_entities(&gq.query);
            pruned_ms += t1.elapsed().as_secs_f64() * 1e3;
            acc_pruned += answer_accuracy(&after, &truth);
            n += 1;
        }
        let n = n.max(1) as f64;
        println!(
            "{:8} {:>10.2} {:>10.2} {:>8.1}% {:>8.1}% {:>7.1}x",
            s.name(),
            full_ms / n,
            pruned_ms / n,
            100.0 * acc_full / n,
            100.0 * acc_pruned / n,
            full_ms / pruned_ms.max(1e-9)
        );
    }
    println!("\npruning trades a little recall for a large online-time cut (Fig. 6a).");
}
