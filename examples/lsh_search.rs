//! Constant-time online answering with the LSH index (§III-H) plus model
//! checkpointing: train once, save, reload, and serve top-k answers from
//! hash buckets instead of a full scan.
//!
//! ```sh
//! cargo run --release --example lsh_search
//! ```

use halk::core::lsh::EntityLsh;
use halk::core::{train_model, HalkConfig, HalkModel, TrainConfig};
use halk::kg::{generate, SynthConfig};
use halk::logic::{Sampler, Structure};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::time::Instant;

fn main() {
    let g = generate(&SynthConfig::fb237_like(), &mut StdRng::seed_from_u64(7));
    let mut model = HalkModel::new(&g, HalkConfig::default());
    let tc = TrainConfig {
        steps: 1500,
        ..TrainConfig::default()
    };
    let stats = train_model(&mut model, &g, &Structure::training(), &tc).expect("training failed");
    println!("trained in {:.1?}", stats.wall);

    // Persist and reload — the served model is the checkpointed one.
    let dir = std::env::temp_dir().join("halk_lsh_example");
    model.save(&dir).expect("checkpoint written");
    let served = HalkModel::load(&g, &dir).expect("checkpoint read");
    println!("checkpoint round-tripped through {}", dir.display());

    // Build the LSH index over entity points once, offline.
    let t0 = Instant::now();
    let lsh = EntityLsh::build(&served, 8, 12, 99);
    println!(
        "LSH index: {} tables built in {:.1?}",
        lsh.n_tables(),
        t0.elapsed()
    );

    // Serve queries two ways and compare.
    let sampler = Sampler::new(&g);
    let mut rng = StdRng::seed_from_u64(42);
    let k = 10;
    let mut agree = 0usize;
    let mut total = 0usize;
    let (mut scan_ns, mut lsh_ns) = (0u128, 0u128);
    for gq in sampler.sample_many(Structure::P2, 20, &mut rng) {
        let t = Instant::now();
        let scores = served.score_all(&gq.query);
        scan_ns += t.elapsed().as_nanos();
        let mut exact: Vec<u32> = (0..scores.len() as u32).collect();
        exact.sort_by(|&a, &b| {
            scores[a as usize]
                .partial_cmp(&scores[b as usize])
                .expect("finite")
        });
        let exact_top: Vec<u32> = exact.into_iter().take(k).collect();

        let t = Instant::now();
        let approx = lsh.top_k(&served, &gq.query, k);
        lsh_ns += t.elapsed().as_nanos();

        agree += approx.iter().filter(|e| exact_top.contains(&e.0)).count();
        total += k;
    }
    println!(
        "top-{k} recall vs full scan: {:.0}%  (scan {:.2}ms/q, lsh {:.2}ms/q)",
        100.0 * agree as f64 / total as f64,
        scan_ns as f64 / 20.0 / 1e6,
        lsh_ns as f64 / 20.0 / 1e6,
    );
    println!(
        "(at {} entities the scan is already cheap — the index is for the\n paper's constant-time claim and for much larger graphs)",
        served.n_entities()
    );
}
