//! Quickstart: build a knowledge graph, train HaLk briefly, and answer a
//! multi-hop logical query.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use halk::core::{train_model, HalkConfig, HalkModel, TrainConfig};
use halk::kg::{generate, DatasetSplit, SynthConfig};
use halk::logic::{answer_split, Query, Sampler, Structure};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // 1. A synthetic FB15k-237-style knowledge graph with nested
    //    train ⊆ valid ⊆ test splits (the incomplete-KG setting).
    let mut rng = StdRng::seed_from_u64(7);
    let full = generate(&SynthConfig::fb237_like(), &mut rng);
    let split = DatasetSplit::nested(&full, 0.8, 0.1, &mut rng);
    println!(
        "graph: {} entities, {} relations, {} triples ({} in train)",
        full.n_entities(),
        full.n_relations(),
        full.n_triples(),
        split.train.n_triples()
    );

    // 2. Train HaLk on the training graph. HaLk supports all five logical
    //    operators, so it trains on every structure in the workload.
    let mut model = HalkModel::new(&split.train, HalkConfig::default());
    let tc = TrainConfig {
        steps: 2000,
        log_every: 500,
        ..TrainConfig::default()
    };
    let stats = train_model(&mut model, &split.train, &Structure::training(), &tc)
        .expect("training failed");
    println!(
        "trained {} structures in {:.1?} (final loss {:.3})",
        stats.trained_structures.len(),
        stats.wall,
        stats.tail_loss()
    );

    // 3. Answer a 2i query sampled from the *test* graph: some of its
    //    answers need edges the model never saw.
    let sampler = Sampler::new(&split.test);
    let mut qrng = StdRng::seed_from_u64(99);
    let gq = sampler
        .sample(Structure::I2, &mut qrng)
        .expect("sampleable 2i query");
    println!("\nquery: {}", gq.query.render());

    let ans = answer_split(&gq.query, &split.valid, &split.test);
    println!(
        "exact answers: {} easy (derivable from seen edges), {} hard (need generalization)",
        ans.easy.len(),
        ans.hard.len()
    );

    // 4. Rank all entities by distance to the query's arc embedding.
    let scores = model.score_all(&gq.query);
    let mut ranked: Vec<u32> = (0..scores.len() as u32).collect();
    ranked.sort_by(|&a, &b| {
        scores[a as usize]
            .partial_cmp(&scores[b as usize])
            .expect("finite scores")
    });
    println!("HaLk top-10 candidates:");
    for (i, &e) in ranked.iter().take(10).enumerate() {
        let tag = if ans.easy.iter().chain(&ans.hard).any(|a| a.0 == e) {
            "✓ answer"
        } else {
            ""
        };
        println!(
            "  {:2}. e{:<4} (distance {:.3}) {}",
            i + 1,
            e,
            scores[e as usize],
            tag
        );
    }

    // 5. The same model answers queries with negation, difference and union
    //    — no retraining, one unified operator set.
    let neg = Query::Difference(vec![gq.query.clone(), gq.query.clone().negate()]);
    let s2 = model.score_all(&neg);
    println!(
        "\nthe same model scores a difference-of-negation query: {} finite scores",
        s2.iter().filter(|x| x.is_finite()).count()
    );
}
