//! The paper's motivating scenario (Fig. 1): *"What are the films directed
//! by Oscar-winning American directors?"* — built as an explicit
//! mini knowledge graph, expressed as a computation tree, and answered by
//! the exact engine, a trained HaLk model, and the subgraph matcher.
//!
//! ```sh
//! cargo run --release --example film_recommendation
//! ```

use halk::core::{train_model, HalkConfig, HalkModel, TrainConfig};
use halk::kg::{EntityId, Graph, RelationId, Triple};
use halk::logic::{answers, Query, Structure};
use halk::matching::Matcher;

// Entity ids in the mini graph.
const OSCAR: u32 = 0;
const USA: u32 = 1;
const DIR_BORZAGE: u32 = 2; // Oscar winner, American
const DIR_LANG: u32 = 3; // not an Oscar winner (in this toy), not American
const DIR_WELLES: u32 = 4; // Oscar winner, not American (toy)
const FILM_7TH_HEAVEN: u32 = 5;
const FILM_METROPOLIS: u32 = 6;
const FILM_KANE: u32 = 7;
const N_ENTITIES: u32 = 16;

// Relations.
const WON: u32 = 0; // award -won_by-> director
const CITIZEN: u32 = 1; // country -citizen-> director
const DIRECTED: u32 = 2; // director -directed-> film

fn film_graph() -> Graph {
    let mut triples = vec![
        Triple::new(OSCAR, WON, DIR_BORZAGE),
        Triple::new(OSCAR, WON, DIR_WELLES),
        Triple::new(USA, CITIZEN, DIR_BORZAGE),
        Triple::new(DIR_BORZAGE, DIRECTED, FILM_7TH_HEAVEN),
        Triple::new(DIR_LANG, DIRECTED, FILM_METROPOLIS),
        Triple::new(DIR_WELLES, DIRECTED, FILM_KANE),
    ];
    // Background entities/edges so the embedding space has something to
    // separate (a realistic graph is never just the query's neighborhood).
    for i in 8..N_ENTITIES {
        triples.push(Triple::new(i, DIRECTED, (i + 3) % N_ENTITIES));
        triples.push(Triple::new(OSCAR, WON, (i + 1) % N_ENTITIES));
    }
    Graph::from_triples(N_ENTITIES as usize, 3, triples)
}

fn name(e: u32) -> &'static str {
    match e {
        OSCAR => "Oscar",
        USA => "USA",
        DIR_BORZAGE => "Frank Borzage",
        DIR_LANG => "Fritz Lang",
        DIR_WELLES => "Orson Welles",
        FILM_7TH_HEAVEN => "7th Heaven",
        FILM_METROPOLIS => "Metropolis",
        FILM_KANE => "Citizen Kane",
        _ => "(background)",
    }
}

fn main() {
    let g = film_graph();

    // Fig. 1b's computation graph:
    //   films( directed( won(Oscar) ∩ citizen(USA) ) )
    let query = Query::Intersection(vec![
        Query::atom(EntityId(OSCAR), RelationId(WON)),
        Query::atom(EntityId(USA), RelationId(CITIZEN)),
    ])
    .project(RelationId(DIRECTED));
    println!("computation graph: {}\n", query.render());

    // Exact engine (Fig. 1d's expected output).
    let exact = answers(&query, &g);
    println!("exact engine:");
    for e in exact.iter() {
        println!("  -> {} (e{})", name(e.0), e.0);
    }

    // HaLk executor: embed the query as an arc, rank entities by distance.
    let mut model = HalkModel::new(&g, HalkConfig::default());
    let tc = TrainConfig {
        steps: 1200,
        queries_per_structure: 64,
        ..TrainConfig::default()
    };
    train_model(
        &mut model,
        &g,
        &[Structure::P1, Structure::P2, Structure::I2, Structure::Ip],
        &tc,
    )
    .expect("training failed");
    let scores = model.score_all(&query);
    let mut ranked: Vec<u32> = (0..scores.len() as u32).collect();
    ranked.sort_by(|&a, &b| {
        scores[a as usize]
            .partial_cmp(&scores[b as usize])
            .expect("finite")
    });
    println!("\nHaLk executor (top 3 by arc distance):");
    for &e in ranked.iter().take(3) {
        let mark = if exact.contains(EntityId(e)) {
            "✓"
        } else {
            " "
        };
        println!(
            "  {mark} {} (e{e}, distance {:.3})",
            name(e),
            scores[e as usize]
        );
    }

    // GFinder-style matcher.
    let matches = Matcher::new(&g).answer(&query);
    println!("\nsubgraph matcher (best-effort):");
    for m in matches.iter().take(3) {
        println!("  {} (score {:.1})", name(m.entity.0), m.score);
    }
}
